"""The dense vectorized NumPy backend.

Strategy
--------
The exact engine walks the topological order node by node, per source, in
Python.  This backend reuses the **shared compiled view**'s levelization
(:meth:`repro.graphs.cgraph.CGraph.compiled`: level = longest path from
any root, so every edge crosses strictly upward), adapts its CSR arrays
to ndarrays once per graph, and then runs every sweep as a handful of
array operations per level:

* **Forward ψ pass** — all sources at once.  ``psi`` is a
  ``(num_sources, num_nodes)`` int64 matrix; for each level the emission
  block is ``ψ`` clamped to one on filter columns (and pinned to one on
  each source's own column), and a single ``np.add.at`` scatters it along
  the level's out-edges.  One pass prices *every* item simultaneously.
* **Backward W pass** — the absorbing suffix
  ``W(v) = Σ_{u ∈ children(v)} (1 + [u ∉ A]·W(u))`` as one gather/scatter
  per level in reverse.
* ``I(v | A) = (Σ_s max(ψ_s(v) − 1, 0)) · W(v)`` and
  ``I'(v) = (Σ_s ψ_s(v)) · dout(v)`` are then elementwise products.

Sweep tiers
-----------
Like the python backend, this backend exposes two deterministic sweep
**tiers**, chosen at construction and bit-identical by contract:

* ``bitpack`` (default) — source reachability is packed into ``uint64``
  words (64 sources per lane) and swept once per graph with
  ``np.bitwise_or.reduceat`` popcount gathers; every evaluation then
  runs **two** 1-D sweeps — the aggregate totals ``T(v) = Σ_s ψ_s(v)``
  and the suffix ``W`` — regardless of the source count, using
  ``I(v | A) = (T(v) − nreach(v)) · W(v)`` (``nreach`` is the packed
  popcount of sources reaching ``v``: since adding filters never cuts a
  source off, ``Σ_s max(ψ_s − 1, 0) = T − nreach`` for any filter set).
* ``lanes`` — the historical per-source formulation: the
  ``(num_sources, n)`` ψ matrix.  Kept as the differential reference and
  the ``bitpack_speedup`` bench baseline.

Exactness and overflow
----------------------
Receipt counts are path counts: they grow exponentially in the worst case
and can overrun int64 silently.  At plan-build time the backend runs the
same recurrences once in float64 with ``A = ∅`` — an upper bound for every
filter set, because adding filters only ever shrinks ``ψ`` and ``W`` — and
feeds the bounds to the shared dtype-probe ladder
(:func:`repro.backends.probe.pick_representation`).  If any bound crosses
:data:`~repro.backends.probe.OVERFLOW_LIMIT`, the plan is marked
exact-only and every call transparently delegates to
:class:`~repro.backends.python_backend.PythonBackend`, whose big integers
cannot overflow.  Weighted queries re-check the bound against the supplied
item weights.  The equivalence tests assert bit-identical results across
the two paths either way.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.exceptions import MissingSourceError
from repro.graphs.cgraph import CGraph
from repro.graphs.validation import validate_filter_set
from repro.backends.probe import OVERFLOW_LIMIT, pick_representation
from repro.backends.python_backend import PythonBackend, check_tier
from repro.backends.sampled import SampledEvaluationMixin

Node = Hashable

__all__ = ["NumpyBackend", "NumpyGainSession", "numpy_available", "OVERFLOW_LIMIT"]

_NUMPY_AVAILABLE: bool | None = None


def numpy_available() -> bool:
    """True when :mod:`numpy` can be imported in this environment.

    Memoized: this sits on the ``auto``-backend resolution path of every
    evaluation, and failed imports are not cached by Python itself.
    """
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        try:
            import numpy  # noqa: F401
        except ImportError:  # pragma: no cover - numpy is present in CI
            _NUMPY_AVAILABLE = False
        else:
            _NUMPY_AVAILABLE = True
    return _NUMPY_AVAILABLE


@dataclass
class _Level:
    """One level of the levelized DAG plus its outgoing edge bundle.

    The level's edges are stored twice, pre-grouped for the two sweep
    directions so both can scatter with ``np.add.reduceat`` (exact int64
    segment sums) instead of the much slower ``np.add.at``:

    * forward — grouped by destination: ``fwd_src_local`` (positions
      within ``nodes``), segment starts ``fwd_offsets``, one segment per
      ``fwd_uniq_dst`` entry;
    * backward — grouped by source (natural CSR order): ``bwd_dst``
      (global indices), segment starts ``bwd_offsets``, one segment per
      ``bwd_uniq_src`` entry.
    """

    nodes: Any  # intp[num_level_nodes] — global node indices
    fwd_src_local: Any  # intp[num_edges] — dst-grouped, positions in nodes
    fwd_uniq_dst: Any  # intp[...] — distinct destinations
    fwd_offsets: Any  # intp[...] — reduceat segment starts
    bwd_dst: Any  # intp[num_edges] — src-grouped, global dst indices
    bwd_uniq_src: Any  # intp[...] — distinct sources
    bwd_offsets: Any  # intp[...] — reduceat segment starts
    origin_rows: Any  # intp[...] — ψ rows whose source sits in this level
    origin_cols: Any  # intp[...] — matching positions within ``nodes``
    # Global forward-CSR edge positions of the level's edges, in each
    # grouping's order — how the sampled live-edge masks (trial × edge)
    # are gathered per level for the probabilistic batched sweeps.
    fwd_edge_ids: Any = None  # intp[num_edges] — dst-grouped order
    bwd_edge_ids: Any = None  # intp[num_edges] — src-grouped (CSR) order
    # Sampled-sweep gather tables (dst-grouped order): the global source
    # node of each edge, plus the subset of edges whose source is an item
    # origin (with the matching ψ item row).  The sampled forward pass
    # gathers emissions straight from ψ rows and fixes up only these.
    fwd_src_global: Any = None  # intp[num_edges]
    fwd_origin_sel: Any = None  # intp[...] — edge positions with origin src
    fwd_origin_row: Any = None  # intp[...] — their ψ item rows

    @property
    def has_edges(self) -> bool:
        return self.bwd_dst.size > 0


@dataclass
class _Plan:
    """Per-graph adapter over the shared compiled view.

    Since the compile-once refactor this is a *thin* layer: the CSR
    arrays, degree tables, depth/level partition and source indices are
    all views of :class:`~repro.graphs.compiled.CompiledGraph` data
    (converted to ndarrays once); the only genuinely backend-private
    state is the per-level ``reduceat`` edge groupings and the overflow
    probe's bounds.
    """

    # The plan references the CompiledGraph it adapts — safe with the
    # weak-keyed plan cache because the compiled view holds only a
    # *weak* ref back to its graph (the cache key), so no strong cycle
    # can pin a discarded graph alive.  The reference is what routes
    # ``_nreach`` through the shared blocked warm (and its ``.fpc``-
    # persisted counts).
    index: dict[Node, int]
    node_list: tuple[Node, ...]
    sources: tuple[Node, ...]
    compiled: Any = None
    levels: list[_Level] = field(default_factory=list)
    out_degree: Any = None  # int64[n]
    #: Level (longest path from any root) per node; intp[n].
    depth: Any = None
    num_levels: int = 0
    #: Global out-CSR (natural insertion order) — successors of node v sit
    #: at ``out_dst[out_offsets[v]:out_offsets[v+1]]``.
    out_offsets: Any = None  # intp[n+1]
    out_dst: Any = None  # intp[m]
    #: Global in-CSR — predecessors of node v sit at
    #: ``in_src[in_offsets[v]:in_offsets[v+1]]``.
    in_offsets: Any = None  # intp[n+1]
    in_src: Any = None  # intp[m]
    #: ψ-matrix row of the source whose column this is, −1 elsewhere.
    col_to_row: Any = None  # intp[n]
    #: 1 on source columns, 0 elsewhere — the bitpack tier's per-node
    #: emission bonus (a designated source emits its own item on top of
    #: whatever it relays).
    src_bonus: Any = None  # int64[n]
    #: Lazily-built packed reachability counts (the bitpack tier's
    #: per-graph constant): ``nreach[v]`` = number of sources reaching
    #: ``v``, excluding ``v`` itself.  ``None`` until first needed.
    nreach: Any = None  # int64[n] | None
    #: max over v of (Σ_s ψ_∅(v)) · W_∅(v) — bounds every gain/score.
    prod_bound: float = 0.0
    #: max over v of Σ_s ψ_∅(v) — bounds every per-node receipt total.
    psi_bound: float = 0.0
    #: max over (level, item) of the level's total forward emission, and
    #: max over levels of Σ (1 + W_∅(dst)) — bounds of the *cumulative*
    #: segment sums the sampled sweeps run per level (their prefix-sum
    #: trick sums a whole level before differencing, so the intermediate
    #: can exceed any single node's value).  The forward bound needs a
    #: per-source probe row, so it is deferred (None) until the sampled
    #: state builder — its only consumer — asks for it; the flattened
    #: 1-D plan probe never materializes the (num_sources, n) matrix.
    fwd_levelsum_bound: "float | None" = None
    bwd_levelsum_bound: float = 0.0
    #: When True the int64 path is unsafe; delegate to the exact backend.
    exact_only: bool = False

    @property
    def n(self) -> int:
        return len(self.node_list)


@dataclass
class _SampledState:
    """Per-(graph, model) adapter over the shared sampled worlds.

    Holds the (trials × edges) live-edge masks pre-gathered per level in
    both sweep groupings, plus the per-world live out-degrees and the
    trials-aware overflow verdict.  The coin flips themselves live in
    :class:`repro.propagation.sampling.SampledWorlds` (shared with the
    python backend — same worlds, bit-identical results); this is only
    the ndarray view of them.
    """

    trials: int
    live_fwd: list  # per level: dtype[(trials, level_edges)], dst-grouped
    live_bwd: list  # per level: dtype[(trials, level_edges)], CSR order
    fwd_ends: list  # per level: intp[...] — closing segment boundaries
    bwd_ends: list  # per level: intp[...] — closing segment boundaries
    out_degree: Any  # int64[(trials, n)] — live out-degree per world
    #: Working dtype of the hot path (int32 when the probe's level-sum
    #: bounds allow, halving memory traffic; int64 otherwise).
    dtype: Any = None
    #: True when summing across worlds could overrun int64; delegate.
    exact_only: bool = False


class NumpyBackend(SampledEvaluationMixin):
    """Levelized dense propagation on int64 arrays, exact or bust."""

    name = "numpy"

    def __init__(self, *, tier: str = "bitpack") -> None:
        import weakref

        import numpy as np

        self.tier = check_tier(tier)
        self._np = np
        # The exact-fallback backend rides the same tier, so a pinned
        # lanes backend stays lanes end to end (bench baseline purity).
        self._exact = PythonBackend(tier=tier)
        # Weak-keyed (CGraph is immutable and identity-hashed): plans die
        # with their graphs instead of pinning discarded graphs alive in
        # the registry's singleton backend.
        self._plans: "weakref.WeakKeyDictionary[CGraph, _Plan]" = (
            weakref.WeakKeyDictionary()
        )
        # Per-graph sampled-world adapters (per-level live-mask gathers),
        # keyed inside by the model's worlds_key() — same lifetime rules
        # as the plans.
        self._sampled: "weakref.WeakKeyDictionary[CGraph, dict]" = (
            weakref.WeakKeyDictionary()
        )

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------

    def plan_for(self, graph: CGraph) -> _Plan:
        """The (cached) levelization plan for ``graph``.

        Public for two callers beyond the backend itself: tests inspect
        ``plan.exact_only`` (whether the overflow probe forced this graph
        onto the exact path), and the bench harness calls it to warm the
        cache outside its timed region.
        """
        plan = self._plans.get(graph)
        if plan is None:
            plan = self._build_plan(graph)
            self._plans[graph] = plan
        return plan

    def _multi_arange(self, starts: Any, lengths: Any) -> Any:
        """Concatenate ``arange(start, start+length)`` runs, vectorized."""
        np = self._np
        keep = lengths > 0
        starts, lengths = starts[keep], lengths[keep]
        if starts.size == 0:
            return np.empty(0, dtype=np.intp)
        steps = np.ones(int(lengths.sum()), dtype=np.intp)
        steps[0] = starts[0]
        run_ends = np.cumsum(lengths)[:-1]
        steps[run_ends] = starts[1:] - (starts[:-1] + lengths[:-1]) + 1
        return np.cumsum(steps)

    def _build_plan(self, graph: CGraph) -> _Plan:
        """Adapt the shared compiled view for the vectorized sweeps.

        All structure — CSR arrays, degrees, the level partition — comes
        straight from :meth:`CGraph.compiled`; this method only converts
        the tables to ndarrays and derives the per-level ``reduceat``
        edge groupings the batched sweeps scatter with.  The former
        private builder (dict walks, Kahn levelization, cycle check) is
        gone: one graph, one plan.
        """
        np = self._np
        compiled = graph.compiled()
        if not compiled.is_dag:
            from repro.exceptions import CyclicGraphError

            raise CyclicGraphError("graph contains a directed cycle")
        nodes = compiled.nodes
        n = compiled.n
        index = compiled.index
        sources = tuple(nodes[i] for i in compiled.source_ids)
        plan = _Plan(
            index=index, node_list=nodes, sources=sources, compiled=compiled
        )

        counts = np.array(compiled.out_degree, dtype=np.intp)
        src = np.repeat(np.arange(n, dtype=np.intp), counts)
        dst = np.array(compiled.out_targets, dtype=np.intp)
        plan.out_degree = counts.astype(np.int64)
        plan.out_offsets = np.array(compiled.out_offsets, dtype=np.intp)
        plan.out_dst = dst
        # Global in-CSR (edges grouped by destination) — the incremental
        # gain session recomputes a node's receipts from all its parents.
        plan.in_offsets = np.array(compiled.in_offsets, dtype=np.intp)
        plan.in_src = np.array(compiled.in_sources, dtype=np.intp)

        num_levels = compiled.num_levels
        depth = np.array(compiled.depth, dtype=np.intp)
        plan.depth = depth
        plan.num_levels = num_levels
        # compiled.topo_order is sorted by (depth, id) — exactly the
        # stable by-level node grouping, with the level partition already
        # computed.
        nodes_by_level = np.array(compiled.topo_order, dtype=np.intp)
        level_starts = np.array(compiled.level_offsets, dtype=np.intp)
        local_pos = np.empty(n, dtype=np.intp)
        local_pos[nodes_by_level] = (
            np.arange(n, dtype=np.intp) - level_starts[depth[nodes_by_level]]
        )
        edge_level = depth[src] if src.size else np.empty(0, dtype=np.intp)
        edges_by_level = np.argsort(edge_level, kind="stable")
        edge_level_starts = np.searchsorted(
            edge_level[edges_by_level], np.arange(num_levels + 1)
        )
        source_idx = list(compiled.source_ids)
        col_to_row = np.full(n, -1, dtype=np.intp)
        for row, si in enumerate(source_idx):
            col_to_row[si] = row
        plan.col_to_row = col_to_row
        plan.src_bonus = (col_to_row >= 0).astype(np.int64)

        def group_starts(sorted_keys: Any) -> Any:
            """Segment starts of equal-key runs in an already-sorted array."""
            return np.flatnonzero(
                np.concatenate(
                    ([True], sorted_keys[1:] != sorted_keys[:-1])
                )
            )

        for lvl in range(num_levels):
            lvl_nodes = nodes_by_level[level_starts[lvl]:level_starts[lvl + 1]]
            eids = edges_by_level[
                edge_level_starts[lvl]:edge_level_starts[lvl + 1]
            ]
            src_global = src[eids]  # ascending (CSR order is kept by the
            dst_global = dst[eids]  # stable sort) — already src-grouped
            if src_global.size:
                by_dst = np.argsort(dst_global, kind="stable")
                dst_sorted = dst_global[by_dst]
                fwd_offsets = group_starts(dst_sorted)
                fwd_uniq_dst = dst_sorted[fwd_offsets]
                fwd_src_global = src_global[by_dst]
                fwd_src_local = local_pos[fwd_src_global]
                fwd_edge_ids = eids[by_dst]
                src_rows = col_to_row[fwd_src_global]
                fwd_origin_sel = np.flatnonzero(src_rows >= 0)
                fwd_origin_row = src_rows[fwd_origin_sel]
                bwd_offsets = group_starts(src_global)
                bwd_uniq_src = src_global[bwd_offsets]
                bwd_edge_ids = eids
            else:
                empty = np.empty(0, dtype=np.intp)
                fwd_offsets = fwd_uniq_dst = fwd_src_local = empty
                bwd_offsets = bwd_uniq_src = empty
                fwd_edge_ids = bwd_edge_ids = empty
                fwd_src_global = fwd_origin_sel = fwd_origin_row = empty
            origin_rows = [
                row for row, si in enumerate(source_idx) if depth[si] == lvl
            ]
            origin_cols = [local_pos[source_idx[row]] for row in origin_rows]
            plan.levels.append(
                _Level(
                    nodes=lvl_nodes,
                    fwd_src_local=fwd_src_local,
                    fwd_uniq_dst=fwd_uniq_dst,
                    fwd_offsets=fwd_offsets,
                    bwd_dst=dst_global,
                    bwd_uniq_src=bwd_uniq_src,
                    bwd_offsets=bwd_offsets,
                    origin_rows=np.array(origin_rows, dtype=np.intp),
                    origin_cols=np.array(origin_cols, dtype=np.intp),
                    fwd_edge_ids=fwd_edge_ids,
                    bwd_edge_ids=bwd_edge_ids,
                    fwd_src_global=fwd_src_global,
                    fwd_origin_sel=fwd_origin_sel,
                    fwd_origin_row=fwd_origin_row,
                )
            )

        self._probe_overflow(plan)
        return plan

    def _probe_overflow(self, plan: _Plan) -> None:
        """Bound every representable quantity by one float64 ``A = ∅`` run."""
        with self._np.errstate(over="ignore", invalid="ignore"):
            self._probe_overflow_inner(plan)

    def _probe_overflow_inner(self, plan: _Plan) -> None:
        # float64 overflow to inf (and inf·0 = NaN) is the probe's expected
        # saturation behavior — both force exact_only below.
        #
        # The probe runs entirely in 1-D aggregate form: with A = ∅ each
        # edge (u → v) emits T(u) + [u is a source] (a source's pinned
        # own-item emission — ψ_u(u) = 0 in a DAG, so the bonus term is
        # exactly the per-item origin pinning summed over items), and
        # T(v) = Σ_s ψ_s(v) accumulates over levels.  O(n + m) resident
        # instead of the former (num_sources, n) ψ matrix, which at the
        # scale rungs (S ≈ 0.3n) was half the superquadratic warm wall.
        np = self._np
        n = plan.n
        totals = np.zeros(n, dtype=np.float64)
        bonus = plan.src_bonus.astype(np.float64)
        for lvl in plan.levels:
            if not lvl.has_edges:
                continue
            src = lvl.fwd_src_global
            emit = totals[src] + bonus[src]
            totals[lvl.fwd_uniq_dst] += np.add.reduceat(
                emit, lvl.fwd_offsets
            )
        w = np.zeros(n, dtype=np.float64)
        bwd_levelsum = 0.0
        for lvl in reversed(plan.levels):
            if not lvl.has_edges:
                continue
            contrib = 1.0 + w[lvl.bwd_dst]
            bwd_levelsum = max(bwd_levelsum, float(contrib.sum()))
            w[lvl.bwd_uniq_src] += np.add.reduceat(
                contrib, lvl.bwd_offsets
            )
        # fwd_levelsum_bound needs per-source probe rows; it stays None
        # until _fwd_levelsum — the sampled-state builder's lazy path.
        plan.bwd_levelsum_bound = bwd_levelsum
        plan.psi_bound = float(totals.max()) if n else 0.0
        plan.prod_bound = float((totals * w).max()) if n else 0.0
        # Φ itself needs no bound: total_receipts sums Python ints from
        # .tolist(), so only per-entry/per-node int64 values can overflow,
        # and those are all covered by psi_bound (receipts) or prod_bound
        # (gains and simplified-impact scores, since W(v) ≥ dout(v)).
        # Non-finite bounds mean the probe itself overflowed float64 —
        # including the inf·0 = NaN case from a source-unreachable region
        # with astronomical W.  The shared ladder treats NaN and inf as
        # overflow (NaN comparisons are always False, so they must never
        # be compared directly).
        plan.exact_only = pick_representation(
            plan.psi_bound, plan.prod_bound
        ).exact_only

    def _fwd_levelsum(self, plan: _Plan) -> float:
        """The per-item forward level-sum bound (lazy; cached on the plan).

        max over (level, item) of one item's total forward emission in
        the ``A = ∅`` probe — the only bound that genuinely needs a ψ
        row per source, so it is the only place the ``(num_sources, n)``
        float64 matrix still exists.  Deferred here because only the
        sampled-world state builder consumes it, and the probabilistic
        tiers never run at the source counts where the matrix hurts.
        """
        if plan.fwd_levelsum_bound is None:
            np = self._np
            with np.errstate(over="ignore", invalid="ignore"):
                psi = np.zeros(
                    (len(plan.sources), plan.n), dtype=np.float64
                )
                fwd_levelsum = 0.0
                for lvl in plan.levels:
                    if not lvl.has_edges:
                        continue
                    emit = psi[:, lvl.nodes]  # fancy index: a fresh copy
                    if lvl.origin_rows.size:
                        emit[lvl.origin_rows, lvl.origin_cols] = 1.0
                    edge_emit = emit[:, lvl.fwd_src_local]
                    if edge_emit.size:
                        fwd_levelsum = max(
                            fwd_levelsum, float(edge_emit.sum(axis=1).max())
                        )
                    psi[:, lvl.fwd_uniq_dst] += np.add.reduceat(
                        edge_emit, lvl.fwd_offsets, axis=1
                    )
            plan.fwd_levelsum_bound = fwd_levelsum
        return plan.fwd_levelsum_bound

    # ------------------------------------------------------------------
    # Vectorized sweeps
    # ------------------------------------------------------------------

    def _filter_mask(self, plan: _Plan, filters: Collection[Node]) -> Any:
        np = self._np
        mask = np.zeros(plan.n, dtype=bool)
        for v in filters:
            mask[plan.index[v]] = True
        return mask

    def _mask_from_ids(self, plan: _Plan, filter_ids: Iterable[int]) -> Any:
        np = self._np
        mask = np.zeros(plan.n, dtype=bool)
        ids = list(filter_ids)
        if ids:
            # Negative ids would wrap (ndarray indexing) and silently
            # filter the wrong node; reject them like the id sessions do.
            if min(ids) < 0 or max(ids) >= plan.n:
                from repro.exceptions import MissingNodeError

                raise MissingNodeError(min(ids) if min(ids) < 0 else max(ids))
            mask[ids] = True
        return mask

    def _gains_array(self, plan: _Plan, mask: Any) -> Any:
        """``I(v | A)`` as an int64 array for a prepared boolean mask.

        The bitpack tier computes ``(T − nreach) · W`` (two 1-D sweeps);
        the lanes tier sums ``max(ψ_s − 1, 0)`` over the ψ matrix (one
        row per source).  Bit-identical: ``ψ_s(v) ≥ 1`` exactly when
        ``s`` reaches ``v``, for every filter set.
        """
        np = self._np
        w = self._suffix_vector(plan, mask)
        if self.tier == "bitpack":
            totals = self._totals_vector(plan, mask)
            gains = (totals - self._nreach(plan)) * w
        else:
            psi = self._psi_matrix(plan, mask)
            surplus = psi - 1
            np.maximum(surplus, 0, out=surplus)
            gains = surplus.sum(axis=0) * w
        gains[mask] = 0
        return gains

    def _impact_scores(self, plan: _Plan, mask: Any) -> Any:
        """``I'(v) = T(v) · dout(v)`` as an int64 array (tier-dispatched)."""
        if self.tier == "bitpack":
            totals = self._totals_vector(plan, mask)
        else:
            totals = self._psi_matrix(plan, mask).sum(axis=0)
        return totals * plan.out_degree

    def _psi_matrix(self, plan: _Plan, mask: Any) -> Any:
        """``ψ`` for all sources at once: shape ``(num_sources, n)``."""
        np = self._np
        psi = np.zeros((len(plan.sources), plan.n), dtype=np.int64)
        for lvl in plan.levels:
            if not lvl.has_edges:
                continue
            block = psi[:, lvl.nodes]  # fancy index: a fresh copy
            lvl_mask = mask[lvl.nodes]
            if lvl_mask.any():
                emit = np.where(
                    lvl_mask[None, :],
                    (block > 0).astype(np.int64),
                    block,
                )
            else:
                emit = block
            if lvl.origin_rows.size:
                emit[lvl.origin_rows, lvl.origin_cols] = 1
            psi[:, lvl.fwd_uniq_dst] += np.add.reduceat(
                emit[:, lvl.fwd_src_local], lvl.fwd_offsets, axis=1
            )
        return psi

    def _suffix_vector(self, plan: _Plan, mask: Any) -> Any:
        """``W`` (item-independent) in one backward sweep: shape ``(n,)``."""
        np = self._np
        w = np.zeros(plan.n, dtype=np.int64)
        for lvl in reversed(plan.levels):
            if not lvl.has_edges:
                continue
            contrib = 1 + np.where(mask[lvl.bwd_dst], 0, w[lvl.bwd_dst])
            w[lvl.bwd_uniq_src] += np.add.reduceat(contrib, lvl.bwd_offsets)
        return w

    # ------------------------------------------------------------------
    # Bit-packed tier: packed reachability + aggregate totals
    # ------------------------------------------------------------------

    def _nreach(self, plan: _Plan) -> Any:
        """The (cached) packed reachability counts — int64, shape ``(n,)``.

        Routed through the blocked out-of-core warm
        (:func:`repro.propagation.reach.warm_reach_counts`): O(n·B/8)
        resident instead of O(n·S/8), bit-identical by exact integer
        addition, and shared with the compiled graph's cache — so
        ``.fpc``-persisted counts are reused and the python backend's
        warm never re-sweeps.  Plans built without a compiled reference
        (tests) fall back to the monolithic :meth:`_build_nreach`.
        """
        if plan.nreach is None:
            if plan.compiled is not None:
                from repro.propagation.reach import warm_reach_counts

                plan.nreach = self._np.asarray(
                    warm_reach_counts(plan.compiled), dtype=self._np.int64
                )
            else:
                plan.nreach = self._build_nreach(plan)
        return plan.nreach

    def _build_nreach(self, plan: _Plan) -> Any:
        """One bit-packed sweep: 64 sources per ``uint64`` lane.

        ``B(v) = own(v) | OR_{p ∈ pred(v)} B(p)`` over the level
        partition, with each level's per-destination OR folded by
        ``np.bitwise_or.reduceat``; ``nreach(v)`` is then the popcount
        minus ``v``'s own bit (``ψ_v(v) = 0`` in a DAG).  Bit-identical
        to :func:`repro.graphs.compiled.packed_reach_counts`, which the
        python backend sweeps over arbitrary-width ints.
        """
        np = self._np
        lanes = max(1, (len(plan.sources) + 63) // 64)
        B = np.zeros((lanes, plan.n), dtype=np.uint64)
        for col in np.flatnonzero(plan.col_to_row >= 0).tolist():
            row = int(plan.col_to_row[col])
            B[row >> 6, col] |= np.uint64(1 << (row & 63))
        for lvl in plan.levels:
            if not lvl.has_edges:
                continue
            B[:, lvl.fwd_uniq_dst] |= np.bitwise_or.reduceat(
                B[:, lvl.fwd_src_global], lvl.fwd_offsets, axis=1
            )
        return self._popcount_columns(B) - plan.src_bonus

    def _popcount_columns(self, packed: Any) -> Any:
        """Per-column popcount totals of a ``(lanes, n)`` uint64 array."""
        np = self._np
        if hasattr(np, "bitwise_count"):  # numpy >= 2.0
            return np.bitwise_count(packed).sum(axis=0, dtype=np.int64)
        bits = np.unpackbits(packed.view(np.uint8), axis=1)
        return bits.reshape(packed.shape[0], -1, 64).sum(
            axis=(0, 2), dtype=np.int64
        )

    def _totals_vector(self, plan: _Plan, mask: Any) -> Any:
        """Aggregate totals ``T(v) = Σ_s ψ_s(v)`` in one 1-D sweep.

        Per level, each edge ``(u, v)`` carries the emission
        ``E(u) = (nreach(u) if u ∈ A else T(u)) + [u is a source]`` —
        a filter forwards exactly one copy per item it receives (and
        its own item when it is also a source), so its emission is the
        per-graph constant ``nreach + bonus``.  Source-count-independent:
        the same two sweeps whether the graph has 1 source or 10 000.
        """
        np = self._np
        totals = np.zeros(plan.n, dtype=np.int64)
        nreach = self._nreach(plan)
        bonus = plan.src_bonus
        for lvl in plan.levels:
            if not lvl.has_edges:
                continue
            src = lvl.fwd_src_global
            emit = np.where(mask[src], nreach[src], totals[src]) + bonus[src]
            totals[lvl.fwd_uniq_dst] += np.add.reduceat(emit, lvl.fwd_offsets)
        return totals

    # ------------------------------------------------------------------
    # PropagationBackend interface
    # ------------------------------------------------------------------

    def gain_session(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ):
        """Open an incremental :class:`GainSession` (vectorized).

        Construction runs one batched ``ψ``/``W`` sweep; each subsequent
        ``add_filter`` re-settles only the dirty columns level by level.
        Graphs whose counts could overflow int64 transparently get the
        exact big-int session instead — same results, slower deltas.
        """
        if not graph.sources:
            raise MissingSourceError("graph has no sources")
        filter_set = set(filters)
        validate_filter_set(graph, filter_set)
        plan = self.plan_for(graph)
        if plan.exact_only:
            return self._exact.gain_session(graph, filter_set)
        return NumpyGainSession(self, graph, plan, filter_set)

    def node_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        items_per_source: int | Mapping[Node, int] = 1,
    ) -> dict[Node, int]:
        """Receipts per node (``Σ_s ψ_s(v)``, weighted) — batched int64.

        Falls back to the exact backend when the plan's overflow probe
        (or the supplied weights) puts any value near ``2**63``.
        """
        if not graph.sources:
            raise MissingSourceError("graph has no sources")
        validate_filter_set(graph, set(filters))
        plan = self.plan_for(graph)
        np = self._np
        if isinstance(items_per_source, Mapping):
            weights = [max(items_per_source.get(s, 0), 0) for s in plan.sources]
        else:
            weights = [max(items_per_source, 0)] * len(plan.sources)
        max_weight = max(weights, default=0)
        # Compare before multiplying: a weight beyond float64 range would
        # raise OverflowError in the product, and anything >= the limit
        # needs the exact path regardless.
        if (
            plan.exact_only
            or max_weight >= OVERFLOW_LIMIT
            or max_weight * plan.psi_bound >= OVERFLOW_LIMIT
        ):
            return self._exact.node_receipts(
                graph, filters, items_per_source=items_per_source
            )
        mask = self._filter_mask(plan, filters)
        if self.tier == "bitpack" and not isinstance(items_per_source, Mapping):
            # Uniform weights scale the aggregate totals directly — one
            # T sweep instead of one ψ row per source.  Per-source
            # mappings weight individual lanes and keep the ψ matrix.
            totals = self._totals_vector(plan, mask) * max(items_per_source, 0)
        else:
            psi = self._psi_matrix(plan, mask)
            wvec = np.array(weights, dtype=np.int64)
            totals = (psi * wvec[:, None]).sum(axis=0)
        return dict(zip(plan.node_list, totals.tolist()))

    def total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        items_per_source: int | Mapping[Node, int] = 1,
    ) -> int:
        """``Φ(A, V)``: total received copies (summed as Python ints)."""
        return sum(
            self.node_receipts(
                graph, filters, items_per_source=items_per_source
            ).values()
        )

    def marginal_gains(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> dict[Node, int]:
        """``I(v | A) = (Σ_s max(ψ_s(v) − 1, 0)) · W(v)``, vectorized."""
        if not graph.sources:
            raise MissingSourceError("graph has no sources")
        filter_set = set(filters)
        validate_filter_set(graph, filter_set)
        plan = self.plan_for(graph)
        if plan.exact_only:
            return self._exact.marginal_gains(graph, filter_set)
        gains = self._gains_array(plan, self._filter_mask(plan, filter_set))
        return dict(zip(plan.node_list, gains.tolist()))

    def marginal_gains_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
    ) -> list[int]:
        """``I(v | A)`` as a flat list over interned ids, vectorized."""
        if not graph.sources:
            raise MissingSourceError("graph has no sources")
        plan = self.plan_for(graph)
        if plan.exact_only:
            return self._exact.marginal_gains_ids(graph, filter_ids)
        gains = self._gains_array(plan, self._mask_from_ids(plan, filter_ids))
        return gains.tolist()

    def simplified_impacts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> dict[Node, int]:
        """``Greedy_L``'s ``I'(v) = (Σ_s ψ_s(v)) · dout(v)``, vectorized."""
        filter_set = set(filters)
        validate_filter_set(graph, filter_set)
        plan = self.plan_for(graph)
        if plan.exact_only:
            return self._exact.simplified_impacts(graph, filter_set)
        scores = self._impact_scores(plan, self._filter_mask(plan, filter_set))
        return dict(zip(plan.node_list, scores.tolist()))

    def simplified_impacts_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
    ) -> list[int]:
        """``I'(v)`` as a flat list over interned ids, vectorized."""
        plan = self.plan_for(graph)
        if plan.exact_only:
            return self._exact.simplified_impacts_ids(graph, filter_ids)
        scores = self._impact_scores(plan, self._mask_from_ids(plan, filter_ids))
        return scores.tolist()

    # ------------------------------------------------------------------
    # Propagation-model axis: batched sampled-world sweeps
    # ------------------------------------------------------------------
    #
    # The sampled worlds (shared with the python backend, see
    # repro.propagation.sampling) become one extra *sample axis* on the
    # level-synchronous sweeps: ψ grows from (S, n) to (T, S, n) and W
    # from (n,) to (T, n), with each level's scatter multiplied by the
    # level's (T, E_l) live-edge mask before the reduceat.  No per-trial
    # graph rebuilds, no per-trial python loops — one pass prices every
    # (world, item) pair simultaneously.

    def _sampled_state(self, graph: CGraph, plan: _Plan, model) -> "_SampledState":
        from collections import OrderedDict

        from repro.propagation.sampling import MAX_WORLD_SETS_PER_GRAPH

        per_graph = self._sampled.get(graph)
        if per_graph is None:
            per_graph = self._sampled.setdefault(graph, OrderedDict())
        key = model.worlds_key()
        state = per_graph.get(key)
        if state is None:
            state = self._build_sampled_state(graph, plan, model)
            per_graph[key] = state
            # Same LRU bound (and same safety argument) as the shared
            # worlds cache: states are pure functions of the key, so
            # eviction costs a rebuild, never a changed result.
            while len(per_graph) > MAX_WORLD_SETS_PER_GRAPH:
                per_graph.popitem(last=False)
        else:
            per_graph.move_to_end(key)
        return state

    def _build_sampled_state(
        self, graph: CGraph, plan: _Plan, model
    ) -> "_SampledState":
        from repro.propagation.sampling import get_worlds

        np = self._np
        worlds = get_worlds(graph, model)
        trials = worlds.trials
        m = len(worlds.probs.out_probs)
        live = (
            np.frombuffer(worlds.mask_bytes(), dtype=np.uint8)
            .reshape(trials, m)
            .astype(np.int64)
        )
        # The deterministic A = ∅ probe bounds every per-world value (a
        # live-edge world is an edge subset; counts are monotone in
        # edges).  Two derived checks: the final cross-world sum must fit
        # int64, and the working dtype must hold every intermediate —
        # the per-level prefix sums of the cumsum-difference segment
        # trick (levelsum bounds; they also cover each W entry, which
        # accumulates from exactly one level) *and* the stored ψ entries,
        # which accumulate across levels when a node's parents span
        # several and are bounded by psi_bound, not by any single level.
        # int32 halves the hot path's memory traffic when everything
        # comfortably fits; int64 otherwise.
        bound = max(plan.psi_bound, plan.prod_bound)
        levelsum = max(self._fwd_levelsum(plan), plan.bwd_levelsum_bound)
        # Same ladder as the deterministic plan, with the cross-world
        # sum (trials · bound) as the extra rung to clear; inf and NaN
        # (a saturated probe) land on "exact" like any other overflow.
        verdict = pick_representation(trials * bound, levelsum)
        exact_only = plan.exact_only or verdict.exact_only
        dtype = (
            np.int32
            if pick_representation(levelsum, plan.psi_bound).narrow
            else np.int64
        )
        # Pre-gather each level's live columns once (both groupings),
        # trials-major — matching the sweeps' row layout, where
        # per-(world, item) rows stay cache-resident and the segment-sum
        # cumsum runs along the contiguous last axis.  The forward masks
        # are row-repeated per item (ψ row ``t·S + s`` is world ``t``'s
        # item ``s``); the backward ``W`` is item-independent.
        S = len(plan.sources)
        live_fwd = []
        for lvl in plan.levels:
            # order="C": the fancy column gather returns transposed
            # strides, and a non-contiguous operand would poison every
            # hot-path multiply that touches it.
            fwd = live[:, lvl.fwd_edge_ids].astype(dtype, order="C")
            if S > 1:
                fwd = np.repeat(fwd, S, axis=0)
            live_fwd.append(fwd)
        live_bwd = [
            live[:, lvl.bwd_edge_ids].astype(dtype, order="C")
            for lvl in plan.levels
        ]
        # Segment ends per level grouping: segments are contiguous and
        # cover the level exactly, so the cumsum trick needs only the
        # starts (already on the level) plus this closing boundary.
        fwd_ends = [
            np.append(lvl.fwd_offsets[1:], lvl.fwd_src_global.size)
            for lvl in plan.levels
        ]
        bwd_ends = [
            np.append(lvl.bwd_offsets[1:], lvl.bwd_dst.size)
            for lvl in plan.levels
        ]
        # Per-world live out-degree (Greedy_L's dout_t), via cumsum
        # differences so zero-degree nodes need no special case.
        cs = np.zeros((trials, m + 1), dtype=np.int64)
        np.cumsum(live, axis=1, out=cs[:, 1:])
        out_degree = cs[:, plan.out_offsets[1:]] - cs[:, plan.out_offsets[:-1]]
        return _SampledState(
            trials=trials,
            live_fwd=live_fwd,
            live_bwd=live_bwd,
            fwd_ends=fwd_ends,
            bwd_ends=bwd_ends,
            out_degree=out_degree,
            dtype=dtype,
            exact_only=exact_only,
        )

    def _sampled_psi(self, plan: _Plan, state: "_SampledState", mask: Any) -> Any:
        """``ψ`` for all (world, item) pairs: shape ``(trials · S, n)``.

        Flat row-per-(world, item) layout with nodes last: each ``ψ``
        row is a few kilobytes, so the per-edge emission gather stays
        cache-resident, and the per-destination segment sums run as an
        in-place cumsum difference along the contiguous last axis
        (``reduceat``'s per-segment dispatch is what made the naive
        batched sweep no faster than the python loop).  Emissions are
        gathered straight from ``ψ`` and fixed up only where they
        differ: the few filter-source edge columns (clamp to 0/1) and
        origin-source edges (pinned to 1 in their item's rows), instead
        of materializing a per-level emit block.
        """
        np = self._np
        S = len(plan.sources)
        rows = state.trials * S
        psi = np.zeros((rows, plan.n), dtype=state.dtype)
        for i, lvl in enumerate(plan.levels):
            if not lvl.has_edges:
                continue
            src = lvl.fwd_src_global
            contrib = np.take(psi, src, axis=1)  # (rows, E), C-contiguous
            msk = mask[src]
            if msk.any():
                contrib[:, msk] = contrib[:, msk] > 0
            if lvl.fwd_origin_sel.size:
                if S == 1:
                    contrib[:, lvl.fwd_origin_sel] = 1
                else:
                    # Row t·S + s holds item s of world t: the item rows
                    # of source s are the strided slice s::S.
                    for pos, s_row in zip(
                        lvl.fwd_origin_sel, lvl.fwd_origin_row
                    ):
                        contrib[s_row::S, pos] = 1
            contrib *= state.live_fwd[i]
            # Segment sums by cumsum difference: segments (one per
            # destination) tile the level's edges contiguously, and the
            # probe's fwd_levelsum_bound guarantees the level-wide
            # prefix sums fit the working dtype.
            cs = np.cumsum(contrib, axis=1, out=contrib)
            hi = cs[:, state.fwd_ends[i] - 1]
            lo = cs[:, lvl.fwd_offsets - 1]
            lo[:, 0] = 0  # the first segment starts at edge 0
            hi -= lo
            psi[:, lvl.fwd_uniq_dst] += hi
        return psi

    def _sampled_w(self, plan: _Plan, state: "_SampledState", mask: Any) -> Any:
        """``W`` for all worlds in one backward sweep: shape ``(trials, n)``."""
        np = self._np
        w = np.zeros((state.trials, plan.n), dtype=state.dtype)
        for i in range(len(plan.levels) - 1, -1, -1):
            lvl = plan.levels[i]
            if not lvl.has_edges:
                continue
            live = state.live_bwd[i]
            wd = np.take(w, lvl.bwd_dst, axis=1)  # (T, E), C-contiguous
            dmsk = mask[lvl.bwd_dst]
            if dmsk.any():
                wd[:, dmsk] = 0  # filters absorb the perturbation
            # live · (1 + W(dst)) as mask arithmetic: zero dead edges,
            # then add the mask itself (the +1 of live edges only).
            wd *= live
            wd += live
            cs = np.cumsum(wd, axis=1, out=wd)
            hi = cs[:, state.bwd_ends[i] - 1]
            lo = cs[:, lvl.bwd_offsets - 1]
            lo[:, 0] = 0
            hi -= lo
            w[:, lvl.bwd_uniq_src] += hi
        return w

    def sampled_marginal_gains_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
        *,
        model=None,
    ) -> list[int]:
        """``Σ_t I_t(v | A)`` over interned ids — one batched sweep."""
        if model is None:
            return self.marginal_gains_ids(graph, filter_ids)
        if not graph.sources:
            raise MissingSourceError("graph has no sources")
        np = self._np
        plan = self.plan_for(graph)
        state = self._sampled_state(graph, plan, model)
        if state.exact_only:
            return self._exact.sampled_marginal_gains_ids(
                graph, filter_ids, model=model
            )
        mask = self._mask_from_ids(plan, filter_ids)
        psi = self._sampled_psi(plan, state, mask)
        w = self._sampled_w(plan, state, mask)
        surplus = psi - 1
        np.maximum(surplus, 0, out=surplus)
        # Reductions leave the (possibly int32) hot path: per-(node,
        # world) products and the cross-world sum run in int64, which the
        # trials-aware probe check guarantees is enough.
        per_world = surplus.reshape(
            state.trials, len(plan.sources), plan.n
        ).sum(axis=1, dtype=np.int64)
        gains = (per_world * w.astype(np.int64, copy=False)).sum(axis=0)
        gains[mask] = 0
        return gains.tolist()

    def sampled_simplified_impacts_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
        *,
        model=None,
    ) -> list[int]:
        """``Σ_t ψ_t(v) · dout_t(v)`` over interned ids, batched."""
        if model is None:
            return self.simplified_impacts_ids(graph, filter_ids)
        plan = self.plan_for(graph)
        state = self._sampled_state(graph, plan, model)
        if state.exact_only:
            return self._exact.sampled_simplified_impacts_ids(
                graph, filter_ids, model=model
            )
        np = self._np
        mask = self._mask_from_ids(plan, filter_ids)
        psi = self._sampled_psi(plan, state, mask)
        totals = psi.reshape(
            state.trials, len(plan.sources), plan.n
        ).sum(axis=1, dtype=np.int64)
        scores = (totals * state.out_degree).sum(axis=0)
        return scores.tolist()

    def sampled_total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model=None,
    ) -> int:
        """``Σ_t Φ_t(A, V)`` — per-(world, node) int64, summed in Python.

        Only per-entry values need the int64 range (all covered by the
        probe bound); the grand total is accumulated as Python ints,
        mirroring the deterministic ``total_receipts``.
        """
        if model is None:
            return self.total_receipts(graph, filters)
        if not graph.sources:
            raise MissingSourceError("graph has no sources")
        validate_filter_set(graph, set(filters))
        plan = self.plan_for(graph)
        state = self._sampled_state(graph, plan, model)
        if state.exact_only:
            return self._exact.sampled_total_receipts(
                graph, filters, model=model
            )
        np = self._np
        mask = self._filter_mask(plan, filters)
        psi = self._sampled_psi(plan, state, mask)
        return sum(psi.sum(axis=0, dtype=np.int64).tolist())

    # expected_total_receipts / expected_marginal_gains /
    # sampled_gain_session come from SampledEvaluationMixin — one shared
    # reporting boundary over this backend's batched sampled sweeps.

    def warm(self, graph: CGraph) -> None:
        """Adapt (and cache) the shared compiled plan outside timed regions.

        On the bitpack tier this also runs the blocked reachability warm
        (the tier's only other per-graph preprocessing), so timed solve
        regions never pay for it.  Exact-only plans warm the delegate
        backend instead — its sessions consume the same shared counts.
        """
        plan = self.plan_for(graph)
        if plan.exact_only:
            self._exact.warm(graph)
        elif self.tier == "bitpack":
            self._nreach(plan)


class NumpyGainSession:
    """Vectorized incremental gains: dirty-column waves over the levels.

    State (all int64, safe because the plan's ``A = ∅`` overflow probe
    bounds every value any filter set can produce — filters only shrink
    ``ψ`` and ``W``):

    * ``ψ`` — ``(num_sources, n)`` receipts matrix;
    * ``emit`` — the matching per-edge emission matrix (``ψ`` clamped to
      one on filter columns with receipts, pinned to one on each source's
      own column), kept in sync so a node's receipts can be re-derived
      from its parents alone;
    * ``W`` — the absorbing suffix vector;
    * ``surplus`` — ``Σ_s max(ψ_s(v) − 1, 0)`` per column;
    * ``gains`` — ``surplus · W``, zeroed on filter columns.

    :meth:`add_filter` runs two restricted wavefronts.  Forward: starting
    from the new filter's successors, each level's dirty columns get
    their receipts re-gathered from the global in-CSR; columns whose
    ``ψ`` moved update ``surplus``/``emit``, and emission changes dirty
    their successors.  Backward: the mirror image over the out-CSR for
    ``W``, walking levels in reverse from the filter's predecessors.
    Waves die out exactly where the full sweep would produce unchanged
    numbers, so results stay bit-identical to
    :meth:`NumpyBackend.marginal_gains` (and to the exact session).
    """

    backend_name = "numpy"

    def __init__(
        self,
        backend: NumpyBackend,
        graph: CGraph,
        plan: _Plan,
        filters: set[Node],
    ) -> None:
        np = backend._np
        self._np = np
        self._backend = backend
        self._plan = plan
        self._nodes_touched = 0

        mask = backend._filter_mask(plan, filters)
        psi = backend._psi_matrix(plan, mask)
        w = backend._suffix_vector(plan, mask)
        emit = np.where(mask[None, :], (psi > 0).astype(np.int64), psi)
        rows = np.flatnonzero(plan.col_to_row >= 0)
        emit[plan.col_to_row[rows], rows] = 1
        surplus = np.maximum(psi - 1, 0).sum(axis=0)
        gains = surplus * w
        gains[mask] = 0

        self._mask = mask
        self._psi = psi
        self._emit = emit
        self._w = w
        self._surplus = surplus
        self._gains = gains

    # ------------------------------------------------------------------
    # GainSession interface
    # ------------------------------------------------------------------

    @property
    def filters(self) -> frozenset[Node]:
        np = self._np
        nodes = self._plan.node_list
        return frozenset(nodes[j] for j in np.flatnonzero(self._mask).tolist())

    @property
    def nodes_touched(self) -> int:
        return self._nodes_touched

    def gains(self) -> dict[Node, int]:
        """All current ``I(v | A)``, keyed in ``graph.nodes()`` order."""
        return dict(zip(self._plan.node_list, self._gains.tolist()))

    def gain(self, node: Node) -> int:
        """Current exact ``I(node | A)`` — one array read."""
        return int(self._gains[self._plan.index[node]])

    def add_filter(self, node: Node) -> frozenset[Node]:
        """Place ``node``; re-settle dirty columns; return changed nodes."""
        plan = self._plan
        try:
            i = plan.index[node]
        except KeyError:
            from repro.exceptions import MissingNodeError

            raise MissingNodeError(node) from None
        return frozenset(
            plan.node_list[j] for j in self.add_filter_id(i)
        )

    def gains_ids(self) -> list[int]:
        """All current gains as a fresh list indexed by interned id."""
        return self._gains.tolist()

    def gain_id(self, node_id: int) -> int:
        """Current exact gain of one interned id — one array read."""
        return int(self._gains[node_id])

    def add_filter_id(self, node_id: int) -> list[int]:
        """Place an interned id; re-settle dirty columns; return changed ids."""
        np = self._np
        plan = self._plan
        i = node_id
        if i < 0 or i >= plan.n:
            from repro.exceptions import MissingNodeError

            raise MissingNodeError(node_id)
        if self._mask[i]:
            from repro.exceptions import ParameterError

            raise ParameterError(
                f"node {plan.node_list[i]!r} is already a filter"
            )

        mask, psi, emit, w = self._mask, self._psi, self._emit, self._w
        mask[i] = True
        affected = np.zeros(plan.n, dtype=bool)
        affected[i] = True

        # Emission at the new filter drops from ψ to min(ψ, 1) per row
        # (the row whose source *is* this column stays pinned at one).
        old_emit_col = emit[:, i].copy()
        new_emit_col = (psi[:, i] > 0).astype(np.int64)
        row = plan.col_to_row[i]
        if row >= 0:
            new_emit_col[row] = 1
        emit[:, i] = new_emit_col

        dirty = np.zeros(plan.n, dtype=bool)
        if (new_emit_col != old_emit_col).any():
            dirty[self._successors_of(np.array([i], dtype=np.intp))] = True
        self._forward_wave(i, dirty, affected)

        dirty = np.zeros(plan.n, dtype=bool)
        if w[i] > 0:
            # Each predecessor's term for this child collapses from
            # 1 + W to 1.
            dirty[self._predecessors_of(np.array([i], dtype=np.intp))] = True
        self._backward_wave(i, dirty, affected)

        idx = np.flatnonzero(affected)
        new_gains = self._surplus[idx] * w[idx]
        new_gains[mask[idx]] = 0
        self._gains[idx] = new_gains
        return idx.tolist()

    # ------------------------------------------------------------------
    # Wavefronts
    # ------------------------------------------------------------------

    def _successors_of(self, cols: Any) -> Any:
        plan = self._plan
        counts = plan.out_offsets[cols + 1] - plan.out_offsets[cols]
        pos = self._backend._multi_arange(plan.out_offsets[cols], counts)
        return plan.out_dst[pos]

    def _predecessors_of(self, cols: Any) -> Any:
        plan = self._plan
        counts = plan.in_offsets[cols + 1] - plan.in_offsets[cols]
        pos = self._backend._multi_arange(plan.in_offsets[cols], counts)
        return plan.in_src[pos]

    def _forward_wave(self, start: int, dirty: Any, affected: Any) -> None:
        """Re-settle ψ columns level by level below the new filter."""
        np = self._np
        plan = self._plan
        mask, psi, emit = self._mask, self._psi, self._emit
        for lvl in range(int(plan.depth[start]) + 1, plan.num_levels):
            lvl_nodes = plan.levels[lvl].nodes
            sel = dirty[lvl_nodes]
            if not sel.any():
                continue
            cols = lvl_nodes[sel]
            dirty[cols] = False
            self._nodes_touched += int(cols.size)
            # Dirty columns are successors of something, so every in-CSR
            # segment below is non-empty — reduceat-safe.
            in_counts = plan.in_offsets[cols + 1] - plan.in_offsets[cols]
            parents = self._predecessors_of(cols)
            seg_starts = np.concatenate(
                ([0], np.cumsum(in_counts)[:-1])
            ).astype(np.intp)
            new_block = np.add.reduceat(emit[:, parents], seg_starts, axis=1)
            changed = (new_block != psi[:, cols]).any(axis=0)
            if not changed.any():
                continue
            ccols = cols[changed]
            psi[:, ccols] = new_block[:, changed]
            block = psi[:, ccols]
            self._surplus[ccols] = np.maximum(block - 1, 0).sum(axis=0)
            affected[ccols] = True
            new_emit = np.where(
                mask[ccols][None, :], (block > 0).astype(np.int64), block
            )
            rows = plan.col_to_row[ccols]
            pinned = rows >= 0
            if pinned.any():
                new_emit[rows[pinned], np.flatnonzero(pinned)] = 1
            emit_changed = (new_emit != emit[:, ccols]).any(axis=0)
            emit[:, ccols] = new_emit
            ecols = ccols[emit_changed]
            if ecols.size:
                dirty[self._successors_of(ecols)] = True

    def _backward_wave(self, start: int, dirty: Any, affected: Any) -> None:
        """Re-settle W columns level by level above the new filter."""
        np = self._np
        plan = self._plan
        mask, w = self._mask, self._w
        for lvl in range(int(plan.depth[start]) - 1, -1, -1):
            lvl_nodes = plan.levels[lvl].nodes
            sel = dirty[lvl_nodes]
            if not sel.any():
                continue
            cols = lvl_nodes[sel]
            dirty[cols] = False
            self._nodes_touched += int(cols.size)
            # Dirty columns are predecessors of something, so every
            # out-CSR segment below is non-empty — reduceat-safe.
            out_counts = plan.out_offsets[cols + 1] - plan.out_offsets[cols]
            children = self._successors_of(cols)
            contrib = 1 + np.where(mask[children], 0, w[children])
            seg_starts = np.concatenate(
                ([0], np.cumsum(out_counts)[:-1])
            ).astype(np.intp)
            new_w = np.add.reduceat(contrib, seg_starts)
            changed = new_w != w[cols]
            if not changed.any():
                continue
            ccols = cols[changed]
            w[ccols] = new_w[changed]
            affected[ccols] = True
            dirty[self._predecessors_of(ccols)] = True
