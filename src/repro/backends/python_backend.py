"""The exact arbitrary-precision backend.

Thin adapter over the sweep implementations in
:mod:`repro.propagation.engine`, :mod:`repro.core.impact` and
:mod:`repro.core.greedy_l` — per-source index loops over the compiled
view's cached topological order (flat lists, interned ids), with native
big integers, so results are exact no matter how explosively path counts
grow.

This backend is the semantic reference: every other backend must agree
with it bit-for-bit, and the fast backends delegate to it whenever their
representable range is at risk.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable, Mapping
from typing import TYPE_CHECKING, Hashable

from repro.backends.sampled import SampledEvaluationMixin
from repro.graphs.cgraph import CGraph
from repro.graphs.validation import validate_filter_set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.propagation.model import PropagationModel

Node = Hashable


class PythonBackend(SampledEvaluationMixin):
    """Exact big-int propagation (the seed implementation, unchanged).

    Filter sets are validated here (not in the exact sweeps, which other
    backends reuse for their fallback paths) so every backend rejects
    unknown filter nodes identically.
    """

    name = "python"

    def node_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        items_per_source: int | Mapping[Node, int] = 1,
    ) -> dict[Node, int]:
        """Receipts per node (``Σ_s ψ_s(v)``, weighted) — exact big ints."""
        from repro.propagation.engine import node_receipts_exact

        validate_filter_set(graph, set(filters))
        return node_receipts_exact(
            graph, filters, items_per_source=items_per_source
        )

    def total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        items_per_source: int | Mapping[Node, int] = 1,
    ) -> int:
        """``Φ(A, V)``: total received copies, summed exactly."""
        return sum(
            self.node_receipts(
                graph, filters, items_per_source=items_per_source
            ).values()
        )

    def marginal_gains(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> dict[Node, int]:
        """``I(v | A) = max(ψ(v) − 1, 0) · W(v)`` summed over sources."""
        from repro.core.impact import marginal_gains_exact

        return marginal_gains_exact(graph, filters)

    def marginal_gains_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
    ) -> list[int]:
        """``I(v | A)`` as a flat list over interned ids — index sweeps."""
        from repro.core.impact import marginal_gains_ids_exact

        return marginal_gains_ids_exact(graph, filter_ids)

    def simplified_impacts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> dict[Node, int]:
        """``Greedy_L``'s ``I'(v) = Prefix(v) × dout(v)`` under ``A``."""
        from repro.core.greedy_l import simplified_impacts_exact

        filter_set = set(filters)
        validate_filter_set(graph, filter_set)
        return simplified_impacts_exact(graph, filter_set)

    def simplified_impacts_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
    ) -> list[int]:
        """``I'(v)`` as a flat list over interned ids — index sweeps."""
        from repro.core.greedy_l import simplified_impacts_ids_exact

        return simplified_impacts_ids_exact(graph, filter_ids)

    def gain_session(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ):
        """Open an exact incremental :class:`GainSession`.

        Construction runs one full sweep (``W`` plus ``ψ`` per source);
        each subsequent ``add_filter`` re-settles only the affected DAG
        region with big-int arithmetic.
        """
        from repro.backends.incremental import ExactGainSession

        return ExactGainSession(graph, filters)

    # -- propagation-model axis -----------------------------------------
    # The per-trial reference implementations: one exact sweep per world
    # over the pruned adjacency of :mod:`repro.propagation.sampling`.
    # Every fast backend must agree bit-for-bit (and falls back here when
    # its representable range is at risk).

    def sampled_marginal_gains_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
        *,
        model: "PropagationModel | None" = None,
    ) -> list[int]:
        """``Σ_t I_t(v | A)`` over interned ids — exact big-int SAA."""
        if model is None:
            return self.marginal_gains_ids(graph, filter_ids)
        from repro.propagation.sampling import (
            sampled_marginal_gains_ids_exact,
        )

        return sampled_marginal_gains_ids_exact(
            graph, filter_ids, model=model
        )

    def sampled_simplified_impacts_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
        *,
        model: "PropagationModel | None" = None,
    ) -> list[int]:
        """``Σ_t ψ_t(v) · dout_t(v)`` over interned ids — exact SAA."""
        if model is None:
            return self.simplified_impacts_ids(graph, filter_ids)
        from repro.propagation.sampling import (
            sampled_simplified_impacts_ids_exact,
        )

        return sampled_simplified_impacts_ids_exact(
            graph, filter_ids, model=model
        )

    def sampled_total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model: "PropagationModel | None" = None,
    ) -> int:
        """``Σ_t Φ_t(A, V)`` — exact integer, per-world sweeps."""
        if model is None:
            return self.total_receipts(graph, filters)
        from repro.propagation.sampling import sampled_total_receipts_exact

        return sampled_total_receipts_exact(graph, filters, model=model)

    # expected_total_receipts / expected_marginal_gains /
    # sampled_gain_session come from SampledEvaluationMixin — one shared
    # reporting boundary over this backend's per-trial exact sweeps.

    def warm(self, graph: CGraph) -> None:
        """Build (and cache) the shared compiled view.

        The exact sweeps' only per-graph preprocessing — the same
        :class:`~repro.graphs.compiled.CompiledGraph` every other layer
        shares.
        """
        graph.compiled()
