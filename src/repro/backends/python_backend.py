"""The exact arbitrary-precision backend.

Thin adapter over the sweep implementations in
:mod:`repro.propagation.engine`, :mod:`repro.core.impact` and
:mod:`repro.core.greedy_l` — index loops over the compiled view's cached
topological order (flat lists, interned ids), with native big integers,
so results are exact no matter how explosively path counts grow.

Two sweep **tiers**, chosen at construction and bit-identical by
contract (the differential fuzz harness holds them to it):

* ``bitpack`` (default) — the aggregate formulation: one bit-packed
  reachability sweep per graph (cached), then two sweeps per evaluation
  (``T`` + ``W``) regardless of the source count.
* ``lanes`` — the historical per-source formulation: one ``ψ`` sweep per
  source per evaluation.  Kept as the differential reference and as the
  bench baseline the ``bitpack_speedup`` comparator measures against.

This backend is the semantic reference: every other backend must agree
with it bit-for-bit, and the fast backends delegate to it whenever their
representable range is at risk.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable, Mapping
from typing import TYPE_CHECKING, Hashable

from repro.backends.sampled import SampledEvaluationMixin
from repro.exceptions import MissingSourceError, ParameterError
from repro.graphs.cgraph import CGraph
from repro.graphs.validation import validate_filter_set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.propagation.model import PropagationModel

Node = Hashable

#: The sweep tiers a backend can be pinned to.
TIERS: tuple[str, ...] = ("bitpack", "lanes")


def check_tier(tier: str) -> str:
    """Validate a sweep-tier name (shared by both backends)."""
    if tier not in TIERS:
        known = ", ".join(TIERS)
        raise ParameterError(f"unknown tier {tier!r}; known tiers: {known}")
    return tier


class PythonBackend(SampledEvaluationMixin):
    """Exact big-int propagation (the semantic reference).

    Filter sets are validated here (not in the exact sweeps, which other
    backends reuse for their fallback paths) so every backend rejects
    unknown filter nodes identically.
    """

    name = "python"

    def __init__(self, *, tier: str = "bitpack") -> None:
        self.tier = check_tier(tier)

    def node_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        items_per_source: int | Mapping[Node, int] = 1,
    ) -> dict[Node, int]:
        """Receipts per node (``Σ_s ψ_s(v)``, weighted) — exact big ints."""
        from repro.propagation.engine import node_receipts_exact

        validate_filter_set(graph, set(filters))
        if self.tier == "bitpack" and not isinstance(
            items_per_source, Mapping
        ):
            # Uniform weights scale the aggregate totals directly:
            # one T sweep instead of one ψ sweep per source.  Per-source
            # mappings weight individual lanes and keep the lanes path.
            from repro.propagation.engine import (
                aggregate_receipts_ids,
                loose_filter_mask,
            )

            if not graph.sources:
                raise MissingSourceError("graph has no sources")
            weight = items_per_source
            compiled = graph.compiled()
            totals = aggregate_receipts_ids(
                compiled, loose_filter_mask(compiled, filters)
            )
            if weight <= 0:
                return dict.fromkeys(compiled.nodes, 0)
            return dict(
                zip(compiled.nodes, (weight * t for t in totals))
            )
        return node_receipts_exact(
            graph, filters, items_per_source=items_per_source
        )

    def total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        items_per_source: int | Mapping[Node, int] = 1,
    ) -> int:
        """``Φ(A, V)``: total received copies, summed exactly."""
        return sum(
            self.node_receipts(
                graph, filters, items_per_source=items_per_source
            ).values()
        )

    def marginal_gains(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> dict[Node, int]:
        """``I(v | A) = max(ψ(v) − 1, 0) · W(v)`` summed over sources."""
        filter_set = set(filters)
        validate_filter_set(graph, filter_set)
        compiled = graph.compiled()
        gains = self.marginal_gains_ids(graph, compiled.to_ids(filter_set))
        # Keyed in graph.nodes() order — the cross-backend canonical
        # order, so serialized results match the numpy backend's byte
        # for byte.
        return dict(zip(compiled.nodes, gains))

    def marginal_gains_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
    ) -> list[int]:
        """``I(v | A)`` as a flat list over interned ids — index sweeps."""
        from repro.core.impact import (
            marginal_gains_ids_exact,
            marginal_gains_ids_lanes_exact,
        )

        if self.tier == "lanes":
            return marginal_gains_ids_lanes_exact(graph, filter_ids)
        return marginal_gains_ids_exact(graph, filter_ids)

    def simplified_impacts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> dict[Node, int]:
        """``Greedy_L``'s ``I'(v) = Prefix(v) × dout(v)`` under ``A``."""
        filter_set = set(filters)
        validate_filter_set(graph, filter_set)
        compiled = graph.compiled()
        scores = self.simplified_impacts_ids(
            graph, compiled.to_ids(filter_set)
        )
        return dict(zip(compiled.nodes, scores))

    def simplified_impacts_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
    ) -> list[int]:
        """``I'(v)`` as a flat list over interned ids — index sweeps."""
        from repro.core.greedy_l import (
            simplified_impacts_ids_exact,
            simplified_impacts_ids_lanes_exact,
        )

        if self.tier == "lanes":
            return simplified_impacts_ids_lanes_exact(graph, filter_ids)
        return simplified_impacts_ids_exact(graph, filter_ids)

    def gain_session(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ):
        """Open an exact incremental :class:`GainSession`.

        Construction runs one full sweep; each subsequent ``add_filter``
        re-settles only the affected DAG region with big-int arithmetic.
        The bitpack tier's session rides one aggregate wavefront, the
        lanes tier's one wavefront per perturbed source lane.
        """
        from repro.backends.incremental import (
            ExactGainSession,
            ExactLaneGainSession,
        )

        if self.tier == "lanes":
            return ExactLaneGainSession(graph, filters)
        return ExactGainSession(graph, filters)

    # -- propagation-model axis -----------------------------------------
    # The per-trial reference implementations: one exact sweep per world
    # over the pruned adjacency of :mod:`repro.propagation.sampling`.
    # Every fast backend must agree bit-for-bit (and falls back here when
    # its representable range is at risk).  World evaluation shards
    # across a process pool when repro.propagation.parallel is armed
    # (``--workers``); the reduce is bit-identical to serial.

    def sampled_marginal_gains_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
        *,
        model: "PropagationModel | None" = None,
    ) -> list[int]:
        """``Σ_t I_t(v | A)`` over interned ids — exact big-int SAA."""
        if model is None:
            return self.marginal_gains_ids(graph, filter_ids)
        from repro.propagation.sampling import (
            sampled_marginal_gains_ids_exact,
        )

        return sampled_marginal_gains_ids_exact(
            graph, filter_ids, model=model, tier=self.tier
        )

    def sampled_simplified_impacts_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
        *,
        model: "PropagationModel | None" = None,
    ) -> list[int]:
        """``Σ_t ψ_t(v) · dout_t(v)`` over interned ids — exact SAA."""
        if model is None:
            return self.simplified_impacts_ids(graph, filter_ids)
        from repro.propagation.sampling import (
            sampled_simplified_impacts_ids_exact,
        )

        return sampled_simplified_impacts_ids_exact(
            graph, filter_ids, model=model, tier=self.tier
        )

    def sampled_total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model: "PropagationModel | None" = None,
    ) -> int:
        """``Σ_t Φ_t(A, V)`` — exact integer, per-world sweeps."""
        if model is None:
            return self.total_receipts(graph, filters)
        from repro.propagation.sampling import sampled_total_receipts_exact

        return sampled_total_receipts_exact(
            graph, filters, model=model, tier=self.tier
        )

    # expected_total_receipts / expected_marginal_gains /
    # sampled_gain_session come from SampledEvaluationMixin — one shared
    # reporting boundary over this backend's per-trial exact sweeps.

    def warm(self, graph: CGraph) -> None:
        """Build (and cache) the shared compiled view and, on the
        bitpack tier, the reachability counts.

        Reachability is the bitpack tier's only per-graph preprocessing
        beyond the :class:`~repro.graphs.compiled.CompiledGraph` every
        other layer shares; warming it here keeps it out of the timed
        solve regions (bench) and request paths (service).  Counts come
        from the blocked out-of-core sweep
        (:func:`repro.propagation.reach.warm_reach_counts`) — block-size
        resident memory, bit-identical to the monolithic build — and
        land in the compiled graph's shared cache.
        """
        compiled = graph.compiled()
        if self.tier == "bitpack" and compiled.is_dag:
            from repro.propagation.reach import warm_reach_counts

            warm_reach_counts(compiled)
