"""The exact incremental gain engines (big-int, region-local updates).

One-shot ``marginal_gains`` recomputes its sweeps from scratch for every
filter set.  The greedy loop, however, grows ``A`` one node at a time —
and placing a filter ``f`` perturbs the sweeps only *locally*:

* receipts can change only on nodes reachable **from** ``f``
  (downstream): ``f``'s per-edge emission drops and the deficit
  propagates along out-edges, dying out wherever recomputed values
  happen not to move (e.g. behind another filter whose clamped emission
  is unchanged);
* ``W`` can change only on nodes that can reach ``f`` (upstream): a
  parent's term for child ``u`` is ``1 + [u ∉ A]·W(u)``, so marking
  ``f`` absorbs the ``W(f)`` contribution from each of its parents and
  the shrinkage propagates along in-edges, again stopping as soon as a
  recomputed value is unchanged.

Two sessions implement this contract:

* :class:`ExactGainSession` — the default *bitpack*-tier session.  It
  maintains the **aggregate** totals ``T(v) = Σ_s ψ_s(v)`` instead of
  one ψ lane per source: reachability is filter-independent, so a
  filter's emission is the per-graph constant ``nreach(v)`` and the
  summed recurrence ``E(p) = (nreach(p) if p ∈ A else T(p)) + [p is a
  source]`` closes over ``T`` alone (see
  :func:`repro.propagation.engine.aggregate_receipts_ids`).  Gains are
  ``(T(v) − nreach(v)) · W(v)``.  One wavefront regardless of the
  source count.
* :class:`ExactLaneGainSession` — the *lanes*-tier session, one ψ lane
  per source; the semantic reference the aggregate session (and the
  vectorized session in :mod:`repro.backends.numpy_backend`) is held
  bit-identical to by the differential fuzz harness.

Both report the same changed-id sets: adding a filter only decreases
every ψ lane pointwise, so ``ΔT < 0`` wherever *any* lane moved — per
lane changes can never cancel inside the aggregate.

Node objects appear only at the sessions' public boundary
(:meth:`gains`, :meth:`add_filter`); everything else runs on the
compiled view's interned ids as plain Python big integers, so counts
can never overflow.
"""

from __future__ import annotations

import heapq
from collections.abc import Collection
from typing import Hashable

from repro.exceptions import MissingSourceError, ParameterError
from repro.graphs.cgraph import CGraph
from repro.graphs.validation import validate_filter_set

Node = Hashable


class _SessionBoundary:
    """The node-object boundary both exact sessions share.

    Subclasses provide ``_compiled``, ``_mask``, ``_gains`` and
    ``_nodes_touched`` plus an ``add_filter_id`` implementation.
    """

    backend_name = "python"

    @property
    def filters(self) -> frozenset[Node]:
        nodes = self._compiled.nodes
        return frozenset(
            nodes[v] for v, flagged in enumerate(self._mask) if flagged
        )

    @property
    def nodes_touched(self) -> int:
        return self._nodes_touched

    def gains(self) -> dict[Node, int]:
        """All current ``I(v | A)``, keyed in ``graph.nodes()`` order."""
        return dict(zip(self._compiled.nodes, self._gains))

    def gain(self, node: Node) -> int:
        """Current exact ``I(node | A)`` — one list read."""
        return self._gains[self._compiled.to_id(node)]

    def add_filter(self, node: Node) -> frozenset[Node]:
        """Place ``node``; walk the affected region; return changed nodes."""
        changed = self.add_filter_id(self._compiled.to_id(node))
        nodes = self._compiled.nodes
        return frozenset(nodes[v] for v in changed)

    def gains_ids(self) -> list[int]:
        """All current gains as a fresh list indexed by interned id."""
        return list(self._gains)

    def gain_id(self, node_id: int) -> int:
        """Current exact gain of one interned id — one list read."""
        return self._gains[node_id]

    def _check_new_filter_id(self, node_id: int) -> None:
        if node_id < 0 or node_id >= self._compiled.n:
            from repro.exceptions import MissingNodeError

            raise MissingNodeError(node_id)
        if self._mask[node_id]:
            raise ParameterError(
                f"node {self._compiled.nodes[node_id]!r} is already a filter"
            )


class ExactGainSession(_SessionBoundary):
    """Aggregate-totals incremental gains for a growing filter set.

    State per interned node id ``v`` (all exact integers):

    * ``T(v) = Σ_s ψ_s(v)`` — total copies received over all sources;
    * ``W(v)`` — downstream receipts created per extra emitted copy;
    * ``nreach(v)`` — sources reaching ``v``: a per-graph *constant*
      under filter placement, cached on the compiled view;
    * ``gain(v) = I(v | A) = (T(v) − nreach(v)) · W(v)`` (0 in ``A``).
    """

    def __init__(self, graph: CGraph, filters: Collection[Node] = ()) -> None:
        from repro.core.impact import absorbing_suffix_ids
        from repro.propagation.engine import aggregate_receipts_ids

        if not graph.sources:
            raise MissingSourceError("graph has no sources")
        filter_set = set(filters)
        validate_filter_set(graph, filter_set)

        compiled = graph.compiled()
        self._compiled = compiled
        mask = compiled.filter_mask(
            compiled.index[v] for v in filter_set
        )
        self._mask = mask
        self._nodes_touched = 0

        # Full initial sweep: one W pass plus one aggregate T pass —
        # source-count-independent, unlike the lanes session's S ψ passes.
        self._w = absorbing_suffix_ids(compiled, mask)
        self._nreach = compiled.reach_counts()
        self._totals = aggregate_receipts_ids(compiled, mask, self._nreach)
        w, nreach, totals = self._w, self._nreach, self._totals
        self._gains = [
            0 if mask[v] else (totals[v] - nreach[v]) * w[v]
            for v in range(compiled.n)
        ]

    def add_filter_id(self, node_id: int) -> tuple[int, ...]:
        """Place an interned id; return the changed ids."""
        self._check_new_filter_id(node_id)
        mask = self._mask
        affected: set[int] = {node_id}

        # The new filter's emission moves from T + bonus to nreach +
        # bonus — a change exactly when some source delivers a surplus
        # copy here.  (A source's own pinned emission rides in the bonus
        # term and never moves.)
        emission_moved = self._totals[node_id] != self._nreach[node_id]
        mask[node_id] = 1
        if emission_moved:
            self._forward_update(node_id, affected)
        # W deltas: upstream of ``node_id``.  Each parent's term for this
        # child collapses from 1 + W to 1 — a change only when W > 0.
        if self._w[node_id] > 0:
            self._backward_update(node_id, affected)

        gains, totals, nreach, w = (
            self._gains, self._totals, self._nreach, self._w,
        )
        for v in affected:
            gains[v] = 0 if mask[v] else (totals[v] - nreach[v]) * w[v]
        return tuple(affected)

    def _forward_update(self, start: int, affected: set[int]) -> None:
        """Re-settle ``T`` downstream of ``start`` (just filtered).

        The worklist heap is ordered by topological index, so a node is
        recomputed only after every perturbed parent has been finalized —
        parents always carry smaller indices than their children.  A
        *filter* node whose ``T`` moved still lands in ``affected`` but
        never enqueues its children: its emission ``nreach + bonus`` is
        constant, the exact aggregate image of the lanes session's
        clamped-emission pruning.
        """
        compiled = self._compiled
        succ, pred = compiled.succ_ids, compiled.pred_ids
        topo_index = compiled.topo_index
        mask = self._mask
        totals = self._totals
        nreach = self._nreach
        bonus = compiled.source_mark()
        heap: list[tuple[int, int]] = []
        queued: set[int] = set()
        for child in succ[start]:
            heapq.heappush(heap, (topo_index[child], child))
            queued.add(child)
        while heap:
            _, v = heapq.heappop(heap)
            self._nodes_touched += 1
            new_total = 0
            for p in pred[v]:
                new_total += (
                    nreach[p] if mask[p] else totals[p]
                ) + bonus[p]
            if new_total == totals[v]:
                continue
            totals[v] = new_total
            affected.add(v)
            if not mask[v]:
                for child in succ[v]:
                    if child not in queued:
                        heapq.heappush(heap, (topo_index[child], child))
                        queued.add(child)

    def _backward_update(self, start: int, affected: set[int]) -> None:
        """Re-settle ``W`` upstream of ``start`` (already in ``A``).

        Mirror image of the forward walk: reverse topological order via a
        max-heap on the topological index, so a node is recomputed after
        all of its perturbed children.
        """
        compiled = self._compiled
        succ, pred = compiled.succ_ids, compiled.pred_ids
        topo_index = compiled.topo_index
        mask = self._mask
        w = self._w
        heap: list[tuple[int, int]] = []
        queued: set[int] = set()
        for parent in pred[start]:
            heapq.heappush(heap, (-topo_index[parent], parent))
            queued.add(parent)
        while heap:
            _, v = heapq.heappop(heap)
            self._nodes_touched += 1
            new_w = 0
            for u in succ[v]:
                new_w += 1
                if not mask[u]:
                    new_w += w[u]
            if new_w == w[v]:
                continue
            w[v] = new_w
            affected.add(v)
            for parent in pred[v]:
                if parent not in queued:
                    heapq.heappush(heap, (-topo_index[parent], parent))
                    queued.add(parent)


class ExactLaneGainSession(_SessionBoundary):
    """Per-source-lane incremental gains — the *lanes* tier session.

    State per interned node id ``v`` (all exact integers):

    * ``ψ_s(v)`` for every source ``s`` — copies of ``s``'s item received;
    * ``W(v)`` — downstream receipts created per extra emitted copy;
    * ``surplus(v) = Σ_s max(ψ_s(v) − 1, 0)``;
    * ``gain(v) = I(v | A) = surplus(v) · W(v)`` (0 for nodes in ``A``).
    """

    def __init__(self, graph: CGraph, filters: Collection[Node] = ()) -> None:
        from repro.core.impact import absorbing_suffix_ids
        from repro.propagation.engine import item_receipts_ids

        if not graph.sources:
            raise MissingSourceError("graph has no sources")
        filter_set = set(filters)
        validate_filter_set(graph, filter_set)

        compiled = graph.compiled()
        self._compiled = compiled
        mask = compiled.filter_mask(
            compiled.index[v] for v in filter_set
        )
        self._mask = mask
        self._nodes_touched = 0

        # Full initial sweep: one W pass plus one ψ pass per source — the
        # same cost as a single lanes marginal_gains evaluation.
        self._w = absorbing_suffix_ids(compiled, mask)
        self._psi: dict[int, list[int]] = {
            s: item_receipts_ids(compiled, s, mask)
            for s in compiled.source_ids
        }
        surplus = [0] * compiled.n
        for psi in self._psi.values():
            for v, count in enumerate(psi):
                if count > 1:
                    surplus[v] += count - 1
        self._surplus = surplus
        w = self._w
        self._gains = [
            0 if mask[v] else surplus[v] * w[v] for v in range(compiled.n)
        ]

    def add_filter_id(self, node_id: int) -> tuple[int, ...]:
        """Place an interned id; return the changed ids."""
        self._check_new_filter_id(node_id)
        mask = self._mask
        affected: set[int] = {node_id}

        # ψ deltas propagate only for items whose emission at ``node_id``
        # actually moves: it drops from ψ_s to min(ψ_s, 1), and a source's
        # own emission is pinned at 1 and never changes.
        seeds = [
            origin
            for origin, psi in self._psi.items()
            if origin != node_id and psi[node_id] > 1
        ]
        mask[node_id] = 1
        for origin in seeds:
            self._forward_update(origin, node_id, affected)
        # W deltas: upstream of ``node_id``.  Each parent's term for this
        # child collapses from 1 + W to 1 — a change only when W > 0.
        if self._w[node_id] > 0:
            self._backward_update(node_id, affected)

        gains, surplus, w = self._gains, self._surplus, self._w
        for v in affected:
            gains[v] = 0 if mask[v] else surplus[v] * w[v]
        return tuple(affected)

    # ------------------------------------------------------------------
    # Region walks
    # ------------------------------------------------------------------

    def _emission(
        self, origin: int, v: int, received: int, *, is_filter: bool
    ) -> int:
        """Copies ``v`` emits per out-edge for ``origin``'s item."""
        if v == origin:
            return 1
        if is_filter:
            return 1 if received > 0 else 0
        return received

    def _forward_update(
        self, origin: int, start: int, affected: set[int]
    ) -> None:
        """Re-settle ``ψ_origin`` downstream of ``start`` (just filtered).

        The worklist heap is ordered by topological index, so a node is
        recomputed only after every perturbed parent has been finalized —
        parents always carry smaller indices than their children.
        """
        compiled = self._compiled
        succ, pred = compiled.succ_ids, compiled.pred_ids
        topo_index = compiled.topo_index
        mask = self._mask
        psi = self._psi[origin]
        heap: list[tuple[int, int]] = []
        queued: set[int] = set()
        for child in succ[start]:
            heapq.heappush(heap, (topo_index[child], child))
            queued.add(child)
        while heap:
            _, v = heapq.heappop(heap)
            self._nodes_touched += 1
            new_received = 0
            for p in pred[v]:
                new_received += self._emission(
                    origin, p, psi[p], is_filter=bool(mask[p])
                )
            old_received = psi[v]
            if new_received == old_received:
                continue
            is_filter = bool(mask[v])
            old_emit = self._emission(
                origin, v, old_received, is_filter=is_filter
            )
            new_emit = self._emission(
                origin, v, new_received, is_filter=is_filter
            )
            psi[v] = new_received
            self._surplus[v] += max(new_received - 1, 0) - max(
                old_received - 1, 0
            )
            affected.add(v)
            if old_emit != new_emit:
                for child in succ[v]:
                    if child not in queued:
                        heapq.heappush(heap, (topo_index[child], child))
                        queued.add(child)

    def _backward_update(self, start: int, affected: set[int]) -> None:
        """Re-settle ``W`` upstream of ``start`` (already in ``A``).

        Mirror image of the forward walk: reverse topological order via a
        max-heap on the topological index, so a node is recomputed after
        all of its perturbed children.
        """
        compiled = self._compiled
        succ, pred = compiled.succ_ids, compiled.pred_ids
        topo_index = compiled.topo_index
        mask = self._mask
        w = self._w
        heap: list[tuple[int, int]] = []
        queued: set[int] = set()
        for parent in pred[start]:
            heapq.heappush(heap, (-topo_index[parent], parent))
            queued.add(parent)
        while heap:
            _, v = heapq.heappop(heap)
            self._nodes_touched += 1
            new_w = 0
            for u in succ[v]:
                new_w += 1
                if not mask[u]:
                    new_w += w[u]
            if new_w == w[v]:
                continue
            w[v] = new_w
            affected.add(v)
            for parent in pred[v]:
                if parent not in queued:
                    heapq.heappush(heap, (-topo_index[parent], parent))
                    queued.add(parent)
