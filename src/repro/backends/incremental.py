"""The exact incremental gain engine (big-int, region-local updates).

One-shot ``marginal_gains`` recomputes ``ψ`` (per-source receipts) and
``W`` (the absorbing suffix) from scratch for every filter set.  The
greedy loop, however, grows ``A`` one node at a time — and placing a
filter ``f`` perturbs the sweeps only *locally*:

* ``ψ_s`` can change only on nodes reachable **from** ``f`` (downstream):
  ``f``'s per-edge emission drops from ``ψ_s(f)`` to ``min(ψ_s(f), 1)``
  and the deficit propagates along out-edges, dying out wherever receipt
  counts happen not to move (e.g. behind another filter whose clamped
  emission is unchanged).
* ``W`` can change only on nodes that can reach ``f`` (upstream): a
  parent's term for child ``u`` is ``1 + [u ∉ A]·W(u)``, so marking
  ``f`` absorbs the ``W(f)`` contribution from each of its parents and
  the shrinkage propagates along in-edges, again stopping as soon as a
  recomputed value is unchanged.

:class:`ExactGainSession` maintains ``ψ_s``, ``W``, the per-node surplus
``Σ_s max(ψ_s(v) − 1, 0)`` and the gains ``I(v | A)`` as plain Python
big integers, and :meth:`ExactGainSession.add_filter` walks exactly the
affected region: a worklist ordered by topological index (a heap), so
every node is finalized after all of its perturbed parents — the same
guarantee the full sweep gets from whole-order traversal.

This is the ``python`` backend's :class:`~repro.backends.base.GainSession`
implementation, the semantic reference for the vectorized session in
:mod:`repro.backends.numpy_backend`, and the fallback the latter uses on
graphs whose counts could overflow int64.
"""

from __future__ import annotations

import heapq
from collections.abc import Collection
from typing import Hashable

from repro.exceptions import MissingSourceError, ParameterError
from repro.graphs.cgraph import CGraph
from repro.graphs.validation import validate_filter_set

Node = Hashable


class ExactGainSession:
    """Arbitrary-precision incremental gains for a growing filter set.

    State per node ``v`` (all exact integers):

    * ``ψ_s(v)`` for every source ``s`` — copies of ``s``'s item received;
    * ``W(v)`` — downstream receipts created per extra emitted copy;
    * ``surplus(v) = Σ_s max(ψ_s(v) − 1, 0)``;
    * ``gain(v) = I(v | A) = surplus(v) · W(v)`` (0 for nodes in ``A``).
    """

    backend_name = "python"

    def __init__(self, graph: CGraph, filters: Collection[Node] = ()) -> None:
        from repro.core.impact import absorbing_suffix
        from repro.propagation.engine import item_receipts

        if not graph.sources:
            raise MissingSourceError("graph has no sources")
        filter_set = set(filters)
        validate_filter_set(graph, filter_set)

        self._graph = graph
        self._filters: set[Node] = filter_set
        order = graph.topological_order()
        self._topo_index = {v: i for i, v in enumerate(order)}
        self._nodes_touched = 0

        # Full initial sweep: one W pass plus one ψ pass per source — the
        # same cost as a single marginal_gains evaluation.
        self._w = absorbing_suffix(graph, filter_set, _order=order)
        self._psi: dict[Node, dict[Node, int]] = {
            s: item_receipts(graph, s, filter_set, _order=order)
            for s in graph.sources
        }
        surplus: dict[Node, int] = dict.fromkeys(graph.nodes(), 0)
        for psi in self._psi.values():
            for v, count in psi.items():
                if count > 1:
                    surplus[v] += count - 1
        self._surplus = surplus
        self._gains: dict[Node, int] = {
            v: 0 if v in filter_set else surplus[v] * self._w[v]
            for v in graph.nodes()
        }

    # ------------------------------------------------------------------
    # GainSession interface
    # ------------------------------------------------------------------

    @property
    def filters(self) -> frozenset[Node]:
        return frozenset(self._filters)

    @property
    def nodes_touched(self) -> int:
        return self._nodes_touched

    def gains(self) -> dict[Node, int]:
        """All current ``I(v | A)``, keyed in ``graph.nodes()`` order."""
        return dict(self._gains)

    def gain(self, node: Node) -> int:
        """Current exact ``I(node | A)`` — one dict read."""
        return self._gains[node]

    def add_filter(self, node: Node) -> frozenset[Node]:
        """Place ``node``; walk the affected region; return changed nodes."""
        if node not in self._graph:
            from repro.exceptions import MissingNodeError

            raise MissingNodeError(node)
        if node in self._filters:
            raise ParameterError(f"node {node!r} is already a filter")

        affected: set[Node] = {node}

        # ψ deltas propagate only for items whose emission at ``node``
        # actually moves: it drops from ψ_s(node) to min(ψ_s(node), 1),
        # and a source's own emission is pinned at 1 and never changes.
        seeds = [
            origin
            for origin, psi in self._psi.items()
            if self._emission(origin, node, psi[node], is_filter=False)
            != self._emission(origin, node, psi[node], is_filter=True)
        ]
        self._filters.add(node)
        for origin in seeds:
            self._forward_update(origin, node, affected)
        # W deltas: upstream of ``node``.  Each parent's term for child
        # ``node`` collapses from 1 + W(node) to 1 — a change only when
        # W(node) > 0.
        if self._w[node] > 0:
            self._backward_update(node, affected)

        for v in affected:
            self._gains[v] = (
                0 if v in self._filters else self._surplus[v] * self._w[v]
            )
        return frozenset(affected)

    # ------------------------------------------------------------------
    # Region walks
    # ------------------------------------------------------------------

    def _emission(
        self, origin: Node, v: Node, received: int, *, is_filter: bool
    ) -> int:
        """Copies ``v`` emits per out-edge for ``origin``'s item."""
        if v == origin:
            return 1
        if is_filter:
            return 1 if received > 0 else 0
        return received

    def _forward_update(
        self, origin: Node, start: Node, affected: set[Node]
    ) -> None:
        """Re-settle ``ψ_origin`` downstream of ``start`` (just filtered).

        The worklist heap is ordered by topological index, so a node is
        recomputed only after every perturbed parent has been finalized —
        parents always carry smaller indices than their children.
        """
        graph = self._graph
        topo_index = self._topo_index
        filters = self._filters
        psi = self._psi[origin]
        heap: list[tuple[int, Node]] = []
        queued: set[Node] = set()
        for child in graph.successors(start):
            heapq.heappush(heap, (topo_index[child], child))
            queued.add(child)
        while heap:
            _, v = heapq.heappop(heap)
            self._nodes_touched += 1
            new_received = 0
            for p in graph.predecessors(v):
                new_received += self._emission(
                    origin, p, psi[p], is_filter=p in filters
                )
            old_received = psi[v]
            if new_received == old_received:
                continue
            old_emit = self._emission(
                origin, v, old_received, is_filter=v in filters
            )
            new_emit = self._emission(
                origin, v, new_received, is_filter=v in filters
            )
            psi[v] = new_received
            self._surplus[v] += max(new_received - 1, 0) - max(
                old_received - 1, 0
            )
            affected.add(v)
            if old_emit != new_emit:
                for child in graph.successors(v):
                    if child not in queued:
                        heapq.heappush(heap, (topo_index[child], child))
                        queued.add(child)

    def _backward_update(self, start: Node, affected: set[Node]) -> None:
        """Re-settle ``W`` upstream of ``start`` (already in ``A``).

        Mirror image of the forward walk: reverse topological order via a
        max-heap on the topological index, so a node is recomputed after
        all of its perturbed children.
        """
        graph = self._graph
        topo_index = self._topo_index
        filters = self._filters
        w = self._w
        heap: list[tuple[int, Node]] = []
        queued: set[Node] = set()
        for parent in graph.predecessors(start):
            heapq.heappush(heap, (-topo_index[parent], parent))
            queued.add(parent)
        while heap:
            _, v = heapq.heappop(heap)
            self._nodes_touched += 1
            new_w = 0
            for u in graph.successors(v):
                new_w += 1
                if u not in filters:
                    new_w += w[u]
            if new_w == w[v]:
                continue
            w[v] = new_w
            affected.add(v)
            for parent in graph.predecessors(v):
                if parent not in queued:
                    heapq.heappush(heap, (-topo_index[parent], parent))
                    queued.add(parent)
