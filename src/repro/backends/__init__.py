"""Pluggable propagation backends.

Every placement algorithm and objective evaluation reduces to
topological-order sweeps; a *backend* is one implementation of those
sweeps behind the :class:`~repro.backends.base.PropagationBackend`
protocol:

* ``python`` — the exact arbitrary-precision reference engine
  (:class:`~repro.backends.python_backend.PythonBackend`).
* ``numpy`` — the levelized, batched int64 engine with automatic
  fallback to the exact path on overflow risk
  (:class:`~repro.backends.numpy_backend.NumpyBackend`).
* ``auto`` — ``numpy`` when available, else ``python``.

Each backend also provides an incremental impact path: ``gain_session``
opens a :class:`~repro.backends.base.GainSession` that keeps ``ψ``/``W``
state alive and re-settles only the affected DAG region after each
placement — the engine behind the lazy-greedy (CELF) optimizer
(:mod:`repro.core.celf`).

The registry (:mod:`repro.backends.registry`) owns instances and the
process default; :mod:`repro.propagation.engine`, :mod:`repro.core` and
the CLI all route through it.
"""

from repro.backends.base import GainSession, PropagationBackend
from repro.backends.incremental import ExactGainSession
from repro.backends.numpy_backend import (
    NumpyBackend,
    NumpyGainSession,
    numpy_available,
)
from repro.backends.python_backend import PythonBackend
from repro.backends.registry import (
    BACKEND_NAMES,
    available_backends,
    get_backend,
    get_default_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)

__all__ = [
    "PropagationBackend",
    "GainSession",
    "PythonBackend",
    "NumpyBackend",
    "ExactGainSession",
    "NumpyGainSession",
    "numpy_available",
    "BACKEND_NAMES",
    "available_backends",
    "get_backend",
    "get_default_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]
