"""The sample-average (SAA) gain session shared by every backend.

Under a probabilistic model the gains CELF ranks are the summed-over-
worlds integers ``Σ_t I_t(v | A)`` (see :mod:`repro.propagation.sampling`
for why they stay exact integers).  This session keeps those gains alive
across placements the way the deterministic sessions do, but recomputes
them with one batched ``sampled_marginal_gains_ids`` call per
``add_filter`` instead of walking a regional wavefront — per-world dirty
regions differ world to world, so a shared wavefront has no single
frontier to ride.  The cost profile is therefore eager-like per
placement, while CELF still gets what its correctness argument needs:
exact gains under common random numbers, O(1) stale-top refreshes, and a
changed-id report that provably covers every moved gain (it is computed
by direct comparison).

One class serves both backends: the wrapped backend supplies the batched
evaluation (vectorized sampled sweeps on NumPy, per-world exact sweeps on
pure Python), so results are bit-identical across backends by
construction.
"""

from __future__ import annotations

from collections.abc import Collection
from typing import TYPE_CHECKING, Hashable

from repro.exceptions import MissingNodeError, ParameterError
from repro.graphs.cgraph import CGraph
from repro.graphs.validation import validate_filter_set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import PropagationBackend
    from repro.propagation.model import PropagationModel

Node = Hashable


class SampledEvaluationMixin:
    """The backend-agnostic reporting boundary of the model axis.

    ``expected_*`` (mean at the boundary, node-keyed validating surface)
    and the SAA session opener contain no engine-specific code — they
    only divide by ``trials`` and dispatch back into the backend's own
    ``sampled_*`` / deterministic primitives — so both backends inherit
    the one copy here and the bit-identical-across-backends contract
    cannot be broken by the two halves drifting apart.
    """

    def expected_total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model: "PropagationModel | None" = None,
    ) -> float:
        """SAA estimate of ``E[Φ(A, V)]`` (exact ``Φ`` when no model)."""
        if model is None:
            return float(self.total_receipts(graph, filters))
        return self.sampled_total_receipts(
            graph, filters, model=model
        ) / model.trials

    def expected_marginal_gains(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model: "PropagationModel | None" = None,
    ) -> dict[Node, float]:
        """SAA estimate of ``E[I(v | A)]``, keyed in canonical order."""
        if model is None:
            return {
                v: float(g)
                for v, g in self.marginal_gains(graph, filters).items()
            }
        filter_set = set(filters)
        validate_filter_set(graph, filter_set)
        compiled = graph.compiled()
        summed = self.sampled_marginal_gains_ids(
            graph, compiled.to_ids(filter_set), model=model
        )
        trials = model.trials
        return dict(zip(compiled.nodes, (g / trials for g in summed)))

    def sampled_gain_session(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model: "PropagationModel | None" = None,
    ):
        """Open an SAA gain session (``None`` = the deterministic one)."""
        if model is None:
            return self.gain_session(graph, filters)
        return SampledGainSession(self, graph, filters, model)


class SampledGainSession:
    """Incremental-interface SAA gains for one graph and a growing ``A``.

    Satisfies the :class:`repro.backends.base.GainSession` protocol with
    one semantic shift: :meth:`gains` holds ``Σ_t I_t(v | A)`` — the
    summed sampled gains, exact integers — rather than the deterministic
    ``I(v | A)``.  Ranking and tie-breaking behave identically, which is
    all the optimizers consume.
    """

    def __init__(
        self,
        backend: "PropagationBackend",
        graph: CGraph,
        filters: Collection[Node],
        model: "PropagationModel",
    ) -> None:
        filter_set = set(filters)
        validate_filter_set(graph, filter_set)
        compiled = graph.compiled()
        self.backend_name = backend.name
        self._backend = backend
        self._graph = graph
        self._model = model
        self._compiled = compiled
        self._filter_ids = set(compiled.to_ids(filter_set))
        self._nodes_touched = 0
        self._gains = list(
            backend.sampled_marginal_gains_ids(
                graph, self._filter_ids, model=model
            )
        )

    # ------------------------------------------------------------------
    # GainSession interface
    # ------------------------------------------------------------------

    @property
    def filters(self) -> frozenset[Node]:
        nodes = self._compiled.nodes
        return frozenset(nodes[i] for i in self._filter_ids)

    @property
    def nodes_touched(self) -> int:
        return self._nodes_touched

    def gains(self) -> dict[Node, int]:
        """All current summed SAA gains, keyed in ``graph.nodes()`` order."""
        return dict(zip(self._compiled.nodes, self._gains))

    def gain(self, node: Node) -> int:
        """Current summed SAA gain of one node — an O(1) state read."""
        return self._gains[self._compiled.to_id(node)]

    def add_filter(self, node: Node) -> frozenset[Node]:
        """Place ``node``; recompute the batch; return changed nodes."""
        nodes = self._compiled.nodes
        return frozenset(
            nodes[i] for i in self.add_filter_id(self._compiled.to_id(node))
        )

    def gains_ids(self) -> list[int]:
        """All current summed SAA gains as a fresh id-indexed list."""
        return list(self._gains)

    def gain_id(self, node_id: int) -> int:
        """Current summed SAA gain of one interned id — an O(1) read."""
        return self._gains[node_id]

    def add_filter_id(self, node_id: int) -> list[int]:
        """Place an interned id; return every id whose gain changed.

        The changed set is computed by direct old/new comparison, so it
        is exact by construction — the property CELF's staleness
        bookkeeping relies on.
        """
        compiled = self._compiled
        if not 0 <= node_id < compiled.n:
            raise MissingNodeError(node_id)
        if node_id in self._filter_ids:
            raise ParameterError(
                f"node {compiled.nodes[node_id]!r} is already a filter"
            )
        self._filter_ids.add(node_id)
        old = self._gains
        new = list(
            self._backend.sampled_marginal_gains_ids(
                self._graph, self._filter_ids, model=self._model
            )
        )
        self._gains = new
        self._nodes_touched += compiled.n
        return [v for v in range(compiled.n) if new[v] != old[v]]
