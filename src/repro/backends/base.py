"""The ``PropagationBackend`` protocol.

Every quantity the placement algorithms consume — ``Φ(A, V)``, per-node
receipt totals, the marginal gains ``I(v | A)`` of ``Greedy_All``, and
``Greedy_L``'s simplified impacts ``I'(v)`` — reduces to topological-order
sweeps over the c-graph.  A backend is one implementation of those sweeps;
the algorithms never care *how* the numbers were produced, only that they
are exact.

Contract (shared by all backends, enforced by the equivalence tests):

* Results are **exact integers**, bit-identical across backends.  A backend
  whose fast path cannot guarantee exactness (e.g. fixed-width overflow)
  must fall back to an exact path rather than return approximations.
* Dict results are keyed by node id with plain Python ``int`` values, so
  downstream tie-breaking, serialization and comparisons behave identically
  regardless of backend.
* Backends are stateless with respect to *results*; they may cache derived
  per-graph data (levelizations, index maps) because :class:`CGraph` is
  immutable.

Implementations live next to this module:

* :class:`repro.backends.python_backend.PythonBackend` — the exact
  arbitrary-precision engine (per-source dict sweeps).
* :class:`repro.backends.numpy_backend.NumpyBackend` — the dense vectorized
  engine (levelized batched sweeps, int64 with overflow detection).

Use :func:`repro.backends.registry.get_backend` /
:func:`repro.backends.registry.use_backend` to select one.
"""

from __future__ import annotations

from collections.abc import Collection, Mapping
from typing import Hashable, Protocol, runtime_checkable

from repro.graphs.cgraph import CGraph

Node = Hashable


@runtime_checkable
class PropagationBackend(Protocol):
    """The interface the placement/objective layers program against."""

    #: Registry name ("python", "numpy", ...); informational for wrappers.
    name: str

    def node_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        items_per_source: int | Mapping[Node, int] = 1,
    ) -> dict[Node, int]:
        """Total receipts per node, aggregated over all sources' items."""
        ...  # pragma: no cover

    def total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        items_per_source: int | Mapping[Node, int] = 1,
    ) -> int:
        """``Φ(A, V)``: the grand total number of received copies."""
        ...  # pragma: no cover

    def marginal_gains(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> dict[Node, int]:
        """``I(v | A) = F(A ∪ {v}) − F(A)`` for every node at once."""
        ...  # pragma: no cover

    def simplified_impacts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> dict[Node, int]:
        """``Greedy_L``'s ``I'(v) = Prefix(v) × dout(v)`` under ``A``."""
        ...  # pragma: no cover

    def warm(self, graph: CGraph) -> None:
        """Perform any one-time per-graph preprocessing now.

        Timing harnesses call this outside their measured region so a
        backend's setup cost (levelization plans, cached topological
        orders) does not land on whichever cell happens to run first.
        Backends without per-graph state implement it as a no-op;
        wrappers must forward it.
        """
        ...  # pragma: no cover
