"""The ``PropagationBackend`` protocol.

Every quantity the placement algorithms consume — ``Φ(A, V)``, per-node
receipt totals, the marginal gains ``I(v | A)`` of ``Greedy_All``, and
``Greedy_L``'s simplified impacts ``I'(v)`` — reduces to topological-order
sweeps over the c-graph.  A backend is one implementation of those sweeps;
the algorithms never care *how* the numbers were produced, only that they
are exact.

Contract (shared by all backends, enforced by the equivalence tests):

* Results are **exact integers**, bit-identical across backends.  A backend
  whose fast path cannot guarantee exactness (e.g. fixed-width overflow)
  must fall back to an exact path rather than return approximations.
* Dict results are keyed by node id with plain Python ``int`` values, so
  downstream tie-breaking, serialization and comparisons behave identically
  regardless of backend.
* Backends are stateless with respect to *results*; per-graph derived
  data lives in the shared compiled view
  (:meth:`repro.graphs.cgraph.CGraph.compiled`), which every backend
  consumes instead of building private index maps.  A backend may cache
  only representation-specific adapters over it (the NumPy backend's
  level groupings), never a second copy of the structure.

Beyond the one-shot sweep queries, every backend also offers an
**incremental impact path**: :meth:`PropagationBackend.gain_session`
returns a :class:`GainSession` that keeps ``ψ`` (per-source receipts),
``W`` (the absorbing suffix) and every marginal gain ``I(v | A)`` alive
across placements.  After a filter is placed the session recomputes the
deltas only inside the *affected DAG region* — descendants of the new
filter for ``ψ``, ancestors for ``W`` — instead of re-sweeping the whole
graph.  This is what makes the lazy-greedy (CELF) optimizer
(:class:`repro.core.celf.CelfGreedyAll`) cheap: a single full sweep up
front, then per-placement regional updates and O(1) per-candidate gain
reads.

Both backends additionally expose a **sweep tier** (``tier="bitpack"`` or
``"lanes"`` at construction): ``bitpack`` answers the aggregate queries
from bit-packed source-reachability words (two sweeps total, independent
of the source count) while ``lanes`` keeps the historical one-lane-per-
source formulation as the differential reference.  Tiers change only the
*route* to a number, never the number — the fuzz harness holds them
bit-identical.  See :mod:`repro.backends.probe` for how each route picks
a safely-wide representation before committing to fixed-width arithmetic.

Implementations live next to this module:

* :class:`repro.backends.python_backend.PythonBackend` — the exact
  arbitrary-precision engine (per-source dict sweeps).
* :class:`repro.backends.numpy_backend.NumpyBackend` — the dense vectorized
  engine (levelized batched sweeps, int64 with overflow detection).

Use :func:`repro.backends.registry.get_backend` /
:func:`repro.backends.registry.use_backend` to select one, or
:func:`repro.backends.registry.build_backend` for a tier-pinned instance.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable, Mapping, Sequence
from typing import TYPE_CHECKING, Hashable, Protocol, runtime_checkable

from repro.graphs.cgraph import CGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.propagation.model import PropagationModel

Node = Hashable


@runtime_checkable
class GainSession(Protocol):
    """Incremental marginal-gain state for one graph and a growing ``A``.

    A session owns the sweep state — ``ψ_s(v)`` per source, the absorbing
    suffix ``W(v)``, and the gains ``I(v | A) = Σ_s max(ψ_s(v) − 1, 0) ·
    W(v)`` — and keeps it *exact* while filters are added one by one.
    Placing a filter ``f`` can only change ``ψ`` on descendants of ``f``
    and ``W`` on ancestors of ``f``, so :meth:`add_filter` updates just
    that region and reports which nodes' gains actually moved.

    Sessions honour the same exactness contract as the one-shot queries:
    after any sequence of :meth:`add_filter` calls, :meth:`gains` is
    bit-identical to ``backend.marginal_gains(graph, A)`` on every
    backend.
    """

    #: Name of the backend whose engine computes the deltas.
    backend_name: str

    @property
    def filters(self) -> "frozenset[Node]":
        """The current filter set ``A``."""
        ...  # pragma: no cover

    @property
    def nodes_touched(self) -> int:
        """Cumulative node recomputations performed by incremental updates.

        The honest cost gauge for laziness: a full sweep touches every
        node once per source; an incremental update touches only the
        affected region.  Engine-dependent (the vectorized backend
        touches a column for all sources at once), so compare within one
        backend, never across.
        """
        ...  # pragma: no cover

    def gains(self) -> dict[Node, int]:
        """All current gains ``I(v | A)``, keyed in ``graph.nodes()`` order."""
        ...  # pragma: no cover

    def gain(self, node: Node) -> int:
        """The current exact gain ``I(node | A)`` — an O(1) state read."""
        ...  # pragma: no cover

    def add_filter(self, node: Node) -> "frozenset[Node]":
        """Place ``node``, update the affected region, return changed nodes.

        The returned set contains every node whose gain differs from its
        value before the call (including ``node`` itself, whose gain
        drops to 0); gains of all other nodes are *provably* unchanged.
        """
        ...  # pragma: no cover

    # -- id fast path ---------------------------------------------------
    # Mirrors of the three methods above over the compiled view's
    # interned ids (:meth:`repro.graphs.cgraph.CGraph.compiled`): a gain
    # list indexed by id, an O(1) id read, and an id-returning update.
    # The optimizers (CELF) drive sessions exclusively through these so
    # node objects appear only at the PlacementResult boundary.

    def gains_ids(self) -> "Sequence[int]":
        """All current gains as a list indexed by interned node id."""
        ...  # pragma: no cover

    def gain_id(self, node_id: int) -> int:
        """The current exact gain of one interned id — an O(1) read."""
        ...  # pragma: no cover

    def add_filter_id(self, node_id: int) -> "Collection[int]":
        """Place an interned id; return the ids whose gains changed."""
        ...  # pragma: no cover


@runtime_checkable
class PropagationBackend(Protocol):
    """The interface the placement/objective layers program against."""

    #: Registry name ("python", "numpy", ...); informational for wrappers.
    name: str

    def node_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        items_per_source: int | Mapping[Node, int] = 1,
    ) -> dict[Node, int]:
        """Total receipts per node, aggregated over all sources' items."""
        ...  # pragma: no cover

    def total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        items_per_source: int | Mapping[Node, int] = 1,
    ) -> int:
        """``Φ(A, V)``: the grand total number of received copies."""
        ...  # pragma: no cover

    def marginal_gains(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> dict[Node, int]:
        """``I(v | A) = F(A ∪ {v}) − F(A)`` for every node at once."""
        ...  # pragma: no cover

    def simplified_impacts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> dict[Node, int]:
        """``Greedy_L``'s ``I'(v) = Prefix(v) × dout(v)`` under ``A``."""
        ...  # pragma: no cover

    # -- id fast path ---------------------------------------------------
    # The greedy family evaluates gains thousands of times per run; the
    # id variants skip the node-keyed dict boundary entirely and return
    # flat lists indexed by interned id (= ``graph.nodes()`` rank, so an
    # index compare doubles as the canonical tie-break).  ``filter_ids``
    # must be valid ids of ``graph.compiled()`` — the node-keyed entry
    # points remain the validating surface.

    def marginal_gains_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
    ) -> "Sequence[int]":
        """``I(v | A)`` as a list indexed by interned node id."""
        ...  # pragma: no cover

    def simplified_impacts_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
    ) -> "Sequence[int]":
        """``I'(v)`` as a list indexed by interned node id."""
        ...  # pragma: no cover

    def gain_session(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> GainSession:
        """Open an incremental :class:`GainSession` starting from ``A``.

        Construction costs one full sweep (the same work as a single
        :meth:`marginal_gains` call); every subsequent
        :meth:`GainSession.add_filter` is regional.
        """
        ...  # pragma: no cover

    # -- propagation-model axis -----------------------------------------
    # Sample-average evaluation under a probabilistic relaying model
    # (:class:`repro.propagation.model.PropagationModel`).  The contract
    # mirrors the deterministic one: ``sampled_*`` results are **exact
    # integers summed over the model's sampled worlds** (common random
    # numbers — every evaluation of a run shares one world set), so they
    # are bit-identical across backends and byte-reproducible per seed;
    # the ``expected_*`` entry points divide by ``trials`` at the
    # reporting boundary.  ``model=None`` is deterministic relaying and
    # must take exactly the deterministic path.

    def sampled_marginal_gains_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
        *,
        model: "PropagationModel | None" = None,
    ) -> "Sequence[int]":
        """``Σ_t I_t(v | A)`` as a list indexed by interned node id."""
        ...  # pragma: no cover

    def sampled_simplified_impacts_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
        *,
        model: "PropagationModel | None" = None,
    ) -> "Sequence[int]":
        """``Σ_t ψ_t(v) · dout_t(v)`` as a list indexed by interned id."""
        ...  # pragma: no cover

    def sampled_total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model: "PropagationModel | None" = None,
    ) -> int:
        """``Σ_t Φ_t(A, V)`` — exact; ``/ trials`` is the SAA estimate."""
        ...  # pragma: no cover

    def expected_total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model: "PropagationModel | None" = None,
    ) -> float:
        """SAA estimate of ``E[Φ(A, V)]`` (exact ``Φ`` when no model)."""
        ...  # pragma: no cover

    def expected_marginal_gains(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model: "PropagationModel | None" = None,
    ) -> dict[Node, float]:
        """SAA estimate of ``E[I(v | A)]`` for every node at once."""
        ...  # pragma: no cover

    def sampled_gain_session(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model: "PropagationModel | None" = None,
    ) -> GainSession:
        """A :class:`GainSession` over the summed-over-worlds SAA gains.

        With ``model=None`` this is exactly :meth:`gain_session`.  The
        SAA session satisfies the same interface; its updates recompute
        the batched gains rather than walking a regional wavefront, so
        CELF stays correct (and still saves its O(1) stale refreshes)
        at eager-like per-placement cost.
        """
        ...  # pragma: no cover

    def warm(self, graph: CGraph) -> None:
        """Perform any one-time per-graph preprocessing now.

        Timing harnesses call this outside their measured region so a
        backend's setup cost (levelization plans, cached topological
        orders) does not land on whichever cell happens to run first.
        Backends without per-graph state implement it as a no-op;
        wrappers must forward it.
        """
        ...  # pragma: no cover
